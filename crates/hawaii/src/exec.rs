//! Quantized inference execution against the device simulator.
//!
//! Three modes share one compute path:
//!
//! * [`ExecMode::Intermittent`] — HAWAII-style: every accelerator job's
//!   partial outputs are immediately preserved to NVM together with a
//!   footprint (job counter). A power failure loses the volatile
//!   accumulators; recovery reloads the last committed partials and re-runs
//!   only the interrupted job.
//! * [`ExecMode::TileAtomic`] — SONIC/TAILS-style task-atomic execution:
//!   only completed output tiles are preserved; a power failure re-executes
//!   the whole interrupted tile.
//! * [`ExecMode::Continuous`] — the conventional flow of Figure 2(a):
//!   accumulators stay in VM until an output tile completes, and only final
//!   outputs are written back. Correct only while power never fails.
//!
//! All modes perform the *same* 16-bit fixed-point arithmetic, so their
//! outputs are bit-identical — the crate's central tested invariant.
//!
//! Execution is driven by a resumable [`Engine`]: a cloneable state machine
//! that advances one committed accelerator job per [`Engine::step`] call.
//! [`infer`] is the convenience driver that steps a fresh engine to
//! completion; fault campaigns instead clone the engine mid-flight (paired
//! with a [`iprune_device::sim::SimCheckpoint`]) to fork executions at job
//! boundaries without replaying the prefix.

use crate::deploy::{DeployedLayer, DeployedModel};
use iprune_device::sim::{Commit, DeviceSim, JobCost, SimError};
use iprune_device::trace::SimStats;
use iprune_models::arch::{GraphOp, PrunableKind};
use iprune_obs::TraceEvent;
use iprune_tensor::quant::{requantize, QFormat};
use iprune_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// HAWAII-style: progress preservation after every accelerator job
    /// (finest-grained progress indicator, minimal re-execution).
    Intermittent,
    /// SONIC/TAILS-style task-atomic execution: accumulators stay in VM for
    /// a whole output tile; only completed tiles are preserved (with a
    /// loop-index footprint), and a power failure re-executes the entire
    /// interrupted tile. Fewer NVM writes, more re-executed work.
    TileAtomic,
    /// VM accumulation, output-tile write-back only (continuous power only).
    Continuous,
}

/// Result of one end-to-end inference.
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// Dequantized logits.
    pub logits: Vec<f32>,
    /// Predicted class.
    pub argmax: usize,
    /// End-to-end latency on the simulated device (seconds).
    pub latency_s: f64,
    /// Power cycles experienced.
    pub power_cycles: u64,
    /// Accelerator jobs committed.
    pub jobs: u64,
    /// Accelerator outputs preserved as partials (intermittent mode);
    /// matches the analytic pruning criterion.
    pub preserved_partials: u64,
    /// Job or tile attempts re-issued after a power failure (each one is
    /// re-executed work the progress-preservation granularity paid for).
    pub retries: u64,
    /// Full simulator statistics at completion.
    pub stats: SimStats,
}

/// Engine failure.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying simulator error.
    Sim(SimError),
    /// A job kept failing without committing (energy budget too tight for
    /// forward progress).
    NoProgress {
        /// Layer id where progress stalled.
        layer: usize,
        /// Number of jobs the stalled atomic span re-executes per retry:
        /// 1 for a job-granular (HAWAII) commit, chunk-count + write-back
        /// for a tile-atomic tile.
        tile_jobs: u64,
    },
    /// Power failed while executing in continuous mode: all volatile
    /// progress is lost and the inference cannot be resumed.
    PowerLostInContinuousMode,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "device simulation error: {e}"),
            EngineError::NoProgress { layer, tile_jobs } => {
                write!(f, "no forward progress in layer {layer} (atomic span of {tile_jobs} jobs)")
            }
            EngineError::PowerLostInContinuousMode => {
                write!(f, "power failed while executing in continuous mode")
            }
        }
    }
}

impl Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

const MAX_RETRIES_PER_JOB: u32 = 10_000;
/// Footprint (job counter) bytes preserved with every job.
const FOOTPRINT_BYTES: usize = 4;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Counters {
    jobs: u64,
    partials: u64,
    retries: u64,
}

/// Result of one [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Exactly one accelerator job committed (progress became durable).
    Committed,
    /// The inference completed; call [`Engine::outcome`].
    Done,
}

/// Which phase of the current output tile the engine is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TilePhase {
    /// About to start the tile: emit the scope, load bias, fetch it.
    Enter,
    /// Accumulating non-zero weight chunks.
    Chunk,
    /// Requantize + store the tile's outputs.
    WriteBack,
}

/// Volatile state of the output tile in progress.
#[derive(Debug, Clone, PartialEq, Hash)]
struct TileCursor {
    phase: TilePhase,
    /// Index into the row block's non-zero chunk sequence.
    chunk_idx: usize,
    /// i64 accumulators (bias + committed chunks so far).
    scratch: Vec<i64>,
    /// Tile re-execution count (task-atomic livelock guard).
    retries: u32,
}

impl TileCursor {
    fn enter() -> Self {
        TileCursor { phase: TilePhase::Enter, chunk_idx: 0, scratch: Vec::new(), retries: 0 }
    }
}

/// Progress through one GEMM-backed op (Conv or Fc).
#[derive(Debug, Clone, PartialEq, Hash)]
struct GemmCursor {
    op_idx: usize,
    layer_id: usize,
    src: usize,
    dst: usize,
    dst_c_off: usize,
    relu: bool,
    geom: Geometry,
    bias_shift: u32,
    in_frac: u8,
    w_frac: u8,
    out_fmt: QFormat,
    /// Current im2col strip `[k][s_len]`.
    col: Vec<i16>,
    strip_start: usize,
    s_len: usize,
    rb: usize,
    tile: TileCursor,
}

/// Where the engine is in the graph.
#[derive(Debug, Clone, PartialEq, Hash)]
enum Cursor {
    /// About to run graph op `i` (pools and flattens complete without
    /// committing jobs and advance past in one sweep).
    Op(usize),
    /// Inside a GEMM-backed op.
    Gemm(Box<GemmCursor>),
    /// Inference complete.
    Done,
}

/// Outcome of one phase advance inside a GEMM op.
enum GemmAdvance {
    /// A job committed; `op_done` marks the op's last tile written back.
    Committed { op_done: bool },
    /// No commit (scope entry, tile-atomic retry reset, continuous
    /// write-back); keep advancing.
    NoCommit { op_done: bool },
}

/// A resumable, cloneable inference execution.
///
/// The engine holds every piece of volatile *and* durable-progress state of
/// one inference — quantized activation buffers, tile accumulators, loop
/// indices, job counters — while the paired [`DeviceSim`] holds the timing
/// and energy state. Cloning the engine and checkpointing the simulator at
/// the same job boundary therefore captures the complete execution, which
/// is what the fault-campaign fast path forks from.
///
/// One [`Engine::step`] call advances until exactly one accelerator job
/// commits (retrying through power failures exactly like the monolithic
/// executor did) or the inference completes.
#[derive(Clone)]
pub struct Engine<'m> {
    dm: &'m DeployedModel,
    mode: ExecMode,
    bufs: Vec<Vec<i16>>,
    counters: Counters,
    cycles_at_start: u64,
    cursor: Cursor,
}

impl fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("mode", &self.mode)
            .field("cursor", &self.cursor)
            .field("jobs", &self.counters.jobs)
            .finish_non_exhaustive()
    }
}

impl<'m> Engine<'m> {
    /// Prepares an inference of `dm` on `input` (`[c,h,w]` or `[1,c,h,w]`)
    /// in `mode`. `sim` is only inspected for its current power-cycle
    /// count (the continuous-mode loss baseline); no device work happens
    /// until [`Self::step`].
    pub fn new(dm: &'m DeployedModel, input: &Tensor, sim: &DeviceSim, mode: ExecMode) -> Self {
        let mut bufs: Vec<Vec<i16>> =
            dm.info.buffers.iter().map(|b| vec![0i16; b.numel()]).collect();
        assert_eq!(input.numel(), bufs[0].len(), "input size vs model input buffer");
        let in_fmt = dm.buf_fmts[0];
        for (dst, &v) in bufs[0].iter_mut().zip(input.data()) {
            *dst = in_fmt.quantize(v);
        }
        Engine {
            dm,
            mode,
            bufs,
            counters: Counters { jobs: 0, partials: 0, retries: 0 },
            cycles_at_start: sim.stats().power_cycles,
            cursor: Cursor::Op(0),
        }
    }

    /// Whether the inference has completed.
    pub fn is_done(&self) -> bool {
        self.cursor == Cursor::Done
    }

    /// Accelerator jobs committed so far.
    pub fn jobs_committed(&self) -> u64 {
        self.counters.jobs
    }

    /// Job/tile attempts re-issued after power failures so far.
    pub fn retries(&self) -> u64 {
        self.counters.retries
    }

    /// Whether the engine sits at a tile boundary: between graph ops, at
    /// completion, or about to enter a fresh tile. After a [`Step::Committed`]
    /// this is true exactly when the commit was a tile write-back — the
    /// resynchronization points the campaign fast path splices at.
    pub fn at_tile_boundary(&self) -> bool {
        match &self.cursor {
            Cursor::Done | Cursor::Op(_) => true,
            Cursor::Gemm(gc) => gc.tile.phase == TilePhase::Enter,
        }
    }

    /// Whether two engines are in bit-identical execution state: same
    /// activation buffers and same position (including in-tile accumulators
    /// and the gathered input strip). Job counters are deliberately *not*
    /// compared — a forked execution that re-executed a tile has more
    /// commits than the recording it resynchronized with.
    pub fn state_matches(&self, other: &Engine<'_>) -> bool {
        self.mode == other.mode && self.cursor == other.cursor && self.bufs == other.bufs
    }

    /// 64-bit digest of the execution state compared by
    /// [`Self::state_matches`] (activation buffers + cursor, not job
    /// counters). The fault-campaign fast path records one digest per
    /// committed job, so a forked execution can verify — in O(1) memory per
    /// commit — that post-failure recovery reconverged to the recorded
    /// failure-free state before splicing its suffix.
    pub fn state_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.bufs.hash(&mut h);
        self.cursor.hash(&mut h);
        h.finish()
    }

    /// Advances execution until one accelerator job commits or the
    /// inference completes. Power failures inside the step are retried
    /// (intermittent: re-issue the job; task-atomic: re-execute the tile)
    /// before the step returns, exactly like the monolithic executor.
    ///
    /// # Errors
    ///
    /// Propagates simulator nontermination, reports
    /// [`EngineError::PowerLostInContinuousMode`] when continuous mode
    /// browns out, and [`EngineError::NoProgress`] when a job cannot commit.
    pub fn step(&mut self, sim: &mut DeviceSim) -> Result<Step, EngineError> {
        let Engine { dm, mode, bufs, counters, cycles_at_start, cursor } = self;
        let dm: &DeployedModel = dm;
        let mode = *mode;
        let cycles_at_start = *cycles_at_start;
        loop {
            match cursor {
                Cursor::Done => return Ok(Step::Done),
                Cursor::Op(i) => {
                    let op_idx = *i;
                    // Continuous mode has no progress preservation at all:
                    // any power cycle so far (even one absorbed inside a
                    // blocking transfer) has wiped the volatile accumulators
                    // and the inference is lost.
                    if mode == ExecMode::Continuous && sim.stats().power_cycles > cycles_at_start {
                        return Err(EngineError::PowerLostInContinuousMode);
                    }
                    if op_idx >= dm.info.graph.len() {
                        *cursor = Cursor::Done;
                        return Ok(Step::Done);
                    }
                    let op = &dm.info.graph[op_idx];
                    sim.emit_scope(|| TraceEvent::LayerStart {
                        t: sim.now(),
                        op: op_idx as u32,
                        label: op_label(op),
                    });
                    match op {
                        GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                            match GemmCursor::begin(
                                dm, op_idx, *layer_id, *src, *dst, *dst_c_off, *relu, bufs,
                            ) {
                                Some(gc) => *cursor = Cursor::Gemm(Box::new(gc)),
                                None => {
                                    sim.emit_scope(|| TraceEvent::LayerEnd {
                                        t: sim.now(),
                                        op: op_idx as u32,
                                    });
                                    *cursor = Cursor::Op(op_idx + 1);
                                }
                            }
                        }
                        GraphOp::Fc { layer_id, src, dst, relu } => {
                            match GemmCursor::begin(
                                dm, op_idx, *layer_id, *src, *dst, 0, *relu, bufs,
                            ) {
                                Some(gc) => *cursor = Cursor::Gemm(Box::new(gc)),
                                None => {
                                    sim.emit_scope(|| TraceEvent::LayerEnd {
                                        t: sim.now(),
                                        op: op_idx as u32,
                                    });
                                    *cursor = Cursor::Op(op_idx + 1);
                                }
                            }
                        }
                        GraphOp::MaxPool { src, dst, kh, kw } => {
                            let sdims = dm.info.buffers[*src].dims.clone();
                            let ddims = dm.info.buffers[*dst].dims.clone();
                            let (src_buf, dst_buf) = split_bufs(bufs, *src, *dst);
                            let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                            let (oh, ow) = (ddims[1], ddims[2]);
                            for ch in 0..c {
                                for oy in 0..oh {
                                    for ox in 0..ow {
                                        let mut best = i16::MIN;
                                        for ky in 0..*kh {
                                            for kx in 0..*kw {
                                                let v = src_buf
                                                    [(ch * ih + oy * kh + ky) * iw + ox * kw + kx];
                                                best = best.max(v);
                                            }
                                        }
                                        dst_buf[(ch * oh + oy) * ow + ox] = best;
                                    }
                                }
                            }
                            sim.run_read(src_buf.len() * 2)?;
                            sim.run_cpu(src_buf.len() * 2)?;
                            sim.run_write(dst_buf.len() * 2)?;
                            sim.emit_scope(|| TraceEvent::LayerEnd {
                                t: sim.now(),
                                op: op_idx as u32,
                            });
                            *cursor = Cursor::Op(op_idx + 1);
                        }
                        GraphOp::GlobalAvgPool { src, dst } => {
                            let sdims = dm.info.buffers[*src].dims.clone();
                            let (src_buf, dst_buf) = split_bufs(bufs, *src, *dst);
                            let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                            let hw = (h * w) as i64;
                            for ch in 0..c {
                                let sum: i64 = src_buf[ch * h * w..(ch + 1) * h * w]
                                    .iter()
                                    .map(|&v| v as i64)
                                    .sum();
                                let rounded = if sum >= 0 {
                                    (sum + hw / 2) / hw
                                } else {
                                    (sum - hw / 2) / hw
                                };
                                dst_buf[ch] =
                                    rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
                            }
                            sim.run_read(src_buf.len() * 2)?;
                            sim.run_cpu(src_buf.len())?;
                            sim.run_write(dst_buf.len() * 2)?;
                            sim.emit_scope(|| TraceEvent::LayerEnd {
                                t: sim.now(),
                                op: op_idx as u32,
                            });
                            *cursor = Cursor::Op(op_idx + 1);
                        }
                        GraphOp::Flatten { src, dst } => {
                            let (src_buf, dst_buf) = split_bufs(bufs, *src, *dst);
                            dst_buf.copy_from_slice(src_buf);
                            // address reinterpretation — no device work
                            sim.emit_scope(|| TraceEvent::LayerEnd {
                                t: sim.now(),
                                op: op_idx as u32,
                            });
                            *cursor = Cursor::Op(op_idx + 1);
                        }
                    }
                }
                Cursor::Gemm(gc) => {
                    let adv = gemm_phase(dm, mode, bufs, counters, gc, sim)?;
                    let op_idx = gc.op_idx;
                    match adv {
                        GemmAdvance::Committed { op_done } => {
                            if op_done {
                                sim.emit_scope(|| TraceEvent::LayerEnd {
                                    t: sim.now(),
                                    op: op_idx as u32,
                                });
                                *cursor = Cursor::Op(op_idx + 1);
                            }
                            return Ok(Step::Committed);
                        }
                        GemmAdvance::NoCommit { op_done } => {
                            if op_done {
                                sim.emit_scope(|| TraceEvent::LayerEnd {
                                    t: sim.now(),
                                    op: op_idx as u32,
                                });
                                *cursor = Cursor::Op(op_idx + 1);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Builds the final outcome. Panics unless the engine [`Self::is_done`].
    pub fn outcome(&self, sim: &DeviceSim) -> InferenceOutcome {
        assert!(self.is_done(), "outcome requested before the inference completed");
        let logits_buf = self.bufs.last().expect("at least one buffer");
        let fmt = *self.dm.buf_fmts.last().expect("formats");
        let logits: Vec<f32> = logits_buf.iter().map(|&q| fmt.dequantize(q)).collect();
        let argmax = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        InferenceOutcome {
            logits,
            argmax,
            latency_s: sim.now(),
            power_cycles: sim.stats().power_cycles,
            jobs: self.counters.jobs,
            preserved_partials: self.counters.partials,
            retries: self.counters.retries,
            stats: sim.stats().clone(),
        }
    }
}

/// Runs one end-to-end inference of `dm` on `input` (`[c,h,w]` or
/// `[1,c,h,w]`) against `sim`.
///
/// Use a fresh simulator per inference if you want per-inference latency;
/// reusing one accumulates time and statistics across calls.
///
/// # Errors
///
/// Propagates simulator nontermination, reports
/// [`EngineError::PowerLostInContinuousMode`] when continuous mode browns
/// out, and [`EngineError::NoProgress`] when a job cannot commit.
pub fn infer(
    dm: &DeployedModel,
    input: &Tensor,
    sim: &mut DeviceSim,
    mode: ExecMode,
) -> Result<InferenceOutcome, EngineError> {
    let mut eng = Engine::new(dm, input, sim, mode);
    loop {
        if eng.step(sim)? == Step::Done {
            return Ok(eng.outcome(sim));
        }
    }
}

impl GemmCursor {
    /// Builds the cursor for a GEMM op with the first strip gathered, or
    /// `None` when the op has no work (no spatial positions or a fully
    /// pruned-away weight matrix with no row blocks).
    #[allow(clippy::too_many_arguments)]
    fn begin(
        dm: &DeployedModel,
        op_idx: usize,
        layer_id: usize,
        src: usize,
        dst: usize,
        dst_c_off: usize,
        relu: bool,
        bufs: &[Vec<i16>],
    ) -> Option<GemmCursor> {
        let dl = &dm.layers[layer_id];
        let plan = &dl.plan;
        if plan.n_spatial == 0 || plan.row_blocks() == 0 {
            return None;
        }
        let geom = conv_geometry(dm, layer_id);
        let in_fmt = dm.buf_fmts[src];
        let out_fmt = dm.buf_fmts[dst];
        let (in_frac, w_frac) = (in_fmt.frac_bits(), dl.bsr.format().frac_bits());
        let bias_shift = (in_frac + w_frac - dl.bias_fmt.frac_bits()) as u32;
        let strip = plan.tile.strip;
        let mut col = vec![0i16; plan.k * strip];
        let s_len = strip.min(plan.n_spatial);
        gather_strip(&geom, &bufs[src], plan.k, 0, s_len, &mut col);
        Some(GemmCursor {
            op_idx,
            layer_id,
            src,
            dst,
            dst_c_off,
            relu,
            geom,
            bias_shift,
            in_frac,
            w_frac,
            out_fmt,
            col,
            strip_start: 0,
            s_len,
            rb: 0,
            tile: TileCursor::enter(),
        })
    }
}

/// Advances one GEMM phase: tile entry, one weight chunk, or the write-back.
fn gemm_phase(
    dm: &DeployedModel,
    mode: ExecMode,
    bufs: &mut [Vec<i16>],
    counters: &mut Counters,
    gc: &mut GemmCursor,
    sim: &mut DeviceSim,
) -> Result<GemmAdvance, EngineError> {
    let dl = &dm.layers[gc.layer_id];
    let plan = &dl.plan;
    let (br, bc) = (plan.tile.br, plan.tile.bc);
    let rows = plan.rows_in_block(gc.rb);
    let s_len = gc.s_len;

    match gc.tile.phase {
        TilePhase::Enter => {
            let (rb, strip_start) = (gc.rb, gc.strip_start);
            sim.emit_scope(|| TraceEvent::TileStart {
                t: sim.now(),
                rb: rb as u32,
                strip: strip_start as u32,
            });
            // bias goes into the accumulators before the first chunk
            gc.tile.scratch = (0..rows * s_len)
                .map(|i| (dl.bias[gc.rb * br + i / s_len] as i64) << gc.bias_shift)
                .collect();
            sim.run_read(2 * rows)?; // bias fetch
            gc.tile.phase = TilePhase::Chunk;
            gc.tile.chunk_idx = 0;
            Ok(GemmAdvance::NoCommit { op_done: false })
        }
        TilePhase::Chunk => {
            let Some((slot, cb)) = dl.bsr.row_blocks_iter(gc.rb).nth(gc.tile.chunk_idx) else {
                gc.tile.phase = TilePhase::WriteBack;
                return Ok(GemmAdvance::NoCommit { op_done: false });
            };
            let block = dl.bsr.block(slot);
            let cols = bc.min(plan.k - cb * bc);
            // functional compute (identical on every retry)
            let mut work = gc.tile.scratch.clone();
            for r in 0..rows {
                let wrow = &block[r * bc..r * bc + cols];
                for (c, &wv) in wrow.iter().enumerate() {
                    if wv == 0 {
                        continue;
                    }
                    let xrow = &gc.col[(cb * bc + c) * s_len..(cb * bc + c) * s_len + s_len];
                    let acc = &mut work[r * s_len..(r + 1) * s_len];
                    for (a, &xv) in acc.iter_mut().zip(xrow.iter()) {
                        *a += (wv as i64) * (xv as i64);
                    }
                }
            }
            let read_bytes = 2 * br * bc + 4 + 2 * cols * s_len;
            let macs = rows * bc * s_len;
            match mode {
                ExecMode::Intermittent => {
                    let cost = JobCost {
                        lea_macs: macs,
                        preserve_bytes: 4 * rows * s_len + FOOTPRINT_BYTES,
                        cpu_cycles: rows + 8,
                    };
                    commit_job(dl, sim, mode, read_bytes, cost, counters)?;
                    counters.jobs += 1;
                    counters.partials += (rows * s_len) as u64;
                }
                ExecMode::TileAtomic | ExecMode::Continuous => {
                    sim.run_read(read_bytes)?;
                    let cost = JobCost { lea_macs: macs, preserve_bytes: 0, cpu_cycles: rows + 8 };
                    match sim.run_job(cost)? {
                        Commit::Committed => counters.jobs += 1,
                        Commit::PowerFailed => {
                            if mode == ExecMode::Continuous {
                                return Err(EngineError::PowerLostInContinuousMode);
                            }
                            // task-atomic: volatile accumulators are gone;
                            // re-read the loop indices and redo the tile
                            sim.recover(16)?;
                            counters.retries += 1;
                            gc.tile.retries += 1;
                            if gc.tile.retries > MAX_RETRIES_PER_JOB {
                                let span = dl.bsr.row_blocks_iter(gc.rb).count() as u64 + 1;
                                return Err(EngineError::NoProgress {
                                    layer: dl.layer_id,
                                    tile_jobs: span,
                                });
                            }
                            let keep = gc.tile.retries;
                            gc.tile = TileCursor::enter();
                            gc.tile.retries = keep;
                            return Ok(GemmAdvance::NoCommit { op_done: false });
                        }
                    }
                }
            }
            gc.tile.scratch = work;
            gc.tile.chunk_idx += 1;
            Ok(GemmAdvance::Committed { op_done: false })
        }
        TilePhase::WriteBack => {
            // write-back: requantize + ReLU + store the i16 outputs
            let mut outputs = vec![0i16; rows * s_len];
            for (i, &acc) in gc.tile.scratch.iter().enumerate() {
                let mut v = requantize(acc, gc.in_frac, gc.w_frac, gc.out_fmt.frac_bits());
                if gc.relu && v < 0 {
                    v = 0;
                }
                outputs[i] = v;
            }
            let out_bytes = 2 * rows * s_len;
            let mut committed = true;
            match mode {
                ExecMode::Intermittent => {
                    let cost = JobCost {
                        lea_macs: 0,
                        preserve_bytes: out_bytes + FOOTPRINT_BYTES,
                        cpu_cycles: 2 * rows * s_len,
                    };
                    commit_job(dl, sim, mode, 0, cost, counters)?;
                    counters.jobs += 1;
                }
                ExecMode::TileAtomic => {
                    let cost = JobCost {
                        lea_macs: 0,
                        preserve_bytes: out_bytes + FOOTPRINT_BYTES,
                        cpu_cycles: 2 * rows * s_len,
                    };
                    match sim.run_job(cost)? {
                        Commit::Committed => counters.jobs += 1,
                        Commit::PowerFailed => {
                            sim.recover(16)?;
                            counters.retries += 1;
                            gc.tile.retries += 1;
                            if gc.tile.retries > MAX_RETRIES_PER_JOB {
                                let span = dl.bsr.row_blocks_iter(gc.rb).count() as u64 + 1;
                                return Err(EngineError::NoProgress {
                                    layer: dl.layer_id,
                                    tile_jobs: span,
                                });
                            }
                            let keep = gc.tile.retries;
                            gc.tile = TileCursor::enter();
                            gc.tile.retries = keep;
                            return Ok(GemmAdvance::NoCommit { op_done: false });
                        }
                    }
                }
                ExecMode::Continuous => {
                    sim.run_cpu(2 * rows * s_len)?;
                    sim.run_write(out_bytes)?;
                    committed = false;
                }
            }
            let (rb, strip_start) = (gc.rb, gc.strip_start);
            sim.emit_scope(|| TraceEvent::TileCommit {
                t: sim.now(),
                rb: rb as u32,
                strip: strip_start as u32,
            });
            let dst = bufs[gc.dst].as_mut_slice();
            for r in 0..rows {
                for s in 0..s_len {
                    write_output(
                        &gc.geom,
                        dst,
                        gc.dst_c_off,
                        gc.rb * br + r,
                        gc.strip_start + s,
                        outputs[r * s_len + s],
                    );
                }
            }
            // advance: next row block, else next strip, else op done
            gc.rb += 1;
            let op_done = if gc.rb < plan.row_blocks() {
                gc.tile = TileCursor::enter();
                false
            } else {
                gc.strip_start += gc.s_len;
                if gc.strip_start >= plan.n_spatial {
                    true
                } else {
                    gc.s_len = plan.tile.strip.min(plan.n_spatial - gc.strip_start);
                    gather_strip(
                        &gc.geom,
                        &bufs[gc.src],
                        plan.k,
                        gc.strip_start,
                        gc.s_len,
                        &mut gc.col,
                    );
                    gc.rb = 0;
                    gc.tile = TileCursor::enter();
                    false
                }
            };
            if committed {
                Ok(GemmAdvance::Committed { op_done })
            } else {
                Ok(GemmAdvance::NoCommit { op_done })
            }
        }
    }
}

/// Human-readable label for one graph operation, used in layer scopes.
fn op_label(op: &GraphOp) -> String {
    match op {
        GraphOp::Conv { layer_id, .. } => format!("conv{layer_id}"),
        GraphOp::Fc { layer_id, .. } => format!("fc{layer_id}"),
        GraphOp::MaxPool { .. } => "maxpool".to_string(),
        GraphOp::GlobalAvgPool { .. } => "gap".to_string(),
        GraphOp::Flatten { .. } => "flatten".to_string(),
    }
}

/// Conv geometry needed for input gathering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Geometry {
    Conv {
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
        in_h: usize,
        in_w: usize,
        oh: usize,
        ow: usize,
    },
    Fc,
}

fn conv_geometry(dm: &DeployedModel, layer_id: usize) -> Geometry {
    let p = &dm.info.prunables[layer_id];
    match &p.kind {
        PrunableKind::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, .. } => {
            let (oh, ow) = p.out_hw();
            Geometry::Conv {
                kh: *kh,
                kw: *kw,
                stride: *stride,
                pad_h: *pad_h,
                pad_w: *pad_w,
                in_h: *in_h,
                in_w: *in_w,
                oh,
                ow,
            }
        }
        PrunableKind::Fc { .. } => Geometry::Fc,
    }
}

/// Builds the im2col strip `[k][s_len]` for positions
/// `[strip_start, strip_start + s_len)`.
fn gather_strip(
    geom: &Geometry,
    src: &[i16],
    k: usize,
    strip_start: usize,
    s_len: usize,
    out: &mut [i16],
) {
    match geom {
        Geometry::Fc => {
            debug_assert_eq!(s_len, 1);
            out[..k].copy_from_slice(&src[..k]);
        }
        Geometry::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, oh: _, ow } => {
            let khw = kh * kw;
            for ki in 0..k {
                let c = ki / khw;
                let rem = ki % khw;
                let ky = rem / kw;
                let kx = rem % kw;
                for s in 0..s_len {
                    let pos = strip_start + s;
                    let oy = pos / ow;
                    let ox = pos % ow;
                    let iy = (oy * stride + ky) as isize - *pad_h as isize;
                    let ix = (ox * stride + kx) as isize - *pad_w as isize;
                    out[ki * s_len + s] =
                        if iy < 0 || iy >= *in_h as isize || ix < 0 || ix >= *in_w as isize {
                            0
                        } else {
                            src[(c * in_h + iy as usize) * in_w + ix as usize]
                        };
                }
            }
        }
    }
}

/// Writes one output value to the destination buffer.
fn write_output(
    geom: &Geometry,
    dst: &mut [i16],
    dst_c_off: usize,
    m_index: usize,
    pos: usize,
    value: i16,
) {
    match geom {
        Geometry::Fc => dst[m_index] = value,
        Geometry::Conv { oh, ow, .. } => {
            dst[(dst_c_off + m_index) * oh * ow + pos] = value;
        }
    }
}

/// Issues the reads and the job, retrying through power failures in
/// intermittent mode.
fn commit_job(
    dl: &DeployedLayer,
    sim: &mut DeviceSim,
    mode: ExecMode,
    read_bytes: usize,
    cost: JobCost,
    counters: &mut Counters,
) -> Result<(), EngineError> {
    let mut retries = 0u32;
    loop {
        sim.run_read(read_bytes)?;
        match sim.run_job(cost)? {
            Commit::Committed => return Ok(()),
            Commit::PowerFailed => {
                if mode == ExecMode::Continuous {
                    return Err(EngineError::PowerLostInContinuousMode);
                }
                sim.recover(dl.recovery_bytes())?;
                counters.retries += 1;
                retries += 1;
                if retries > MAX_RETRIES_PER_JOB {
                    // job-granular commit: the atomic span is a single job
                    return Err(EngineError::NoProgress { layer: dl.layer_id, tile_jobs: 1 });
                }
            }
        }
    }
}

/// Borrow two distinct buffers mutably.
fn split_bufs(bufs: &mut [Vec<i16>], src: usize, dst: usize) -> (&[i16], &mut [i16]) {
    assert_ne!(src, dst, "graph ops must not read and write the same buffer");
    if src < dst {
        let (a, b) = bufs.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = bufs.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use crate::graph_exec::run_graph_logits;
    use iprune_device::PowerStrength;
    use iprune_models::zoo::App;

    fn har_deployed() -> (DeployedModel, iprune_datasets::Dataset) {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(12, 42);
        let dm = deploy(&mut model, &ds, 4);
        (dm, ds)
    }

    #[test]
    fn quantized_matches_float_reference() {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(6, 42);
        let dm = deploy(&mut model, &ds, 4);
        let weights = model.extract_weights();
        for i in 0..6 {
            let x = ds.sample(i);
            let float_logits = run_graph_logits(&model.info, &weights, &x);
            let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
            let out = infer(&dm, &x, &mut sim, ExecMode::Continuous).unwrap();
            for (q, f) in out.logits.iter().zip(float_logits.iter()) {
                assert!((q - f).abs() < 0.05, "sample {i}: quantized {q} vs float {f}");
            }
        }
    }

    #[test]
    fn intermittent_equals_continuous_bitwise() {
        let (dm, ds) = har_deployed();
        for i in 0..4 {
            let x = ds.sample(i);
            let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
            let cont = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
            for (strength, seed) in [
                (PowerStrength::Continuous, 0),
                (PowerStrength::Strong, 3),
                (PowerStrength::Weak, 7),
            ] {
                let mut sim_i = DeviceSim::new(strength, seed);
                let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
                assert_eq!(inter.logits, cont.logits, "sample {i} under {strength:?}");
            }
        }
    }

    #[test]
    fn intermittent_preserves_analytic_acc_outputs() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        assert_eq!(out.preserved_partials, dm.total_acc_outputs() as u64);
    }

    #[test]
    fn weak_power_causes_power_cycles_and_higher_latency() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &x, &mut sim_c, ExecMode::Intermittent).unwrap();
        let mut sim_w = DeviceSim::new(PowerStrength::Weak, 1);
        let weak = infer(&dm, &x, &mut sim_w, ExecMode::Intermittent).unwrap();
        assert_eq!(cont.power_cycles, 0);
        assert!(weak.power_cycles > 0, "weak power should brown out");
        assert!(weak.latency_s > cont.latency_s);
        assert_eq!(weak.logits, cont.logits, "recovery must not corrupt outputs");
    }

    #[test]
    fn intermittent_writes_dominate_latency() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        assert!(
            out.stats.write_share() > 0.4,
            "NVM writes should dominate intermittent inference, got {:.2}",
            out.stats.write_share()
        );
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &ds.sample(0), &mut sim_c, ExecMode::Continuous).unwrap();
        assert!(
            cont.stats.write_share() < out.stats.write_share(),
            "continuous mode should write far less"
        );
        assert!(cont.latency_s < out.latency_s);
    }

    #[test]
    fn tile_atomic_matches_intermittent_outputs() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(2);
        let mut sim_i = DeviceSim::new(PowerStrength::Continuous, 0);
        let reference = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
        for (strength, seed) in [(PowerStrength::Strong, 4), (PowerStrength::Weak, 9)] {
            let mut sim_t = DeviceSim::new(strength, seed);
            let out = infer(&dm, &x, &mut sim_t, ExecMode::TileAtomic).unwrap();
            assert_eq!(out.logits, reference.logits, "{strength:?}");
        }
    }

    #[test]
    fn tile_atomic_writes_less_but_wastes_more() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim_job = DeviceSim::new(PowerStrength::Weak, 6);
        let job = infer(&dm, &x, &mut sim_job, ExecMode::Intermittent).unwrap();
        let mut sim_tile = DeviceSim::new(PowerStrength::Weak, 6);
        let tile = infer(&dm, &x, &mut sim_tile, ExecMode::TileAtomic).unwrap();
        assert!(
            tile.stats.nvm_write_bytes < job.stats.nvm_write_bytes / 2,
            "tile-atomic should write far less: {} vs {}",
            tile.stats.nvm_write_bytes,
            job.stats.nvm_write_bytes
        );
        // the coarser progress indicator re-executes whole tiles: under
        // harvested power, more jobs run than a failure-free execution needs
        let mut sim_ref = DeviceSim::new(PowerStrength::Continuous, 0);
        let nominal = infer(&dm, &x, &mut sim_ref, ExecMode::TileAtomic).unwrap();
        assert!(
            tile.jobs >= nominal.jobs,
            "re-execution can only add jobs: {} vs nominal {}",
            tile.jobs,
            nominal.jobs
        );
        assert_eq!(tile.preserved_partials, 0);
    }

    #[test]
    fn fully_pruned_rows_still_produce_bias_outputs() {
        // Zero every weight of HAR's conv2: the engine must still write the
        // (bias-only) outputs of every row block, in all modes, identically.
        use iprune_tensor::layer::Layer;
        let mut model = App::Har.build();
        model.visit_params(&mut |p| {
            if p.name == "conv1.w" {
                p.value.fill_zero();
            }
        });
        let ds = App::Har.dataset(4, 42);
        let dm = deploy(&mut model, &ds, 2);
        // layer 1's BSR is empty
        assert_eq!(dm.layers[1].bsr.nnz_blocks(), 0);
        let x = ds.sample(0);
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
        let mut sim_i = DeviceSim::new(PowerStrength::Weak, 5);
        let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
        assert_eq!(cont.logits, inter.logits);
        assert!(cont.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn traced_inference_has_layer_scopes_and_reconciles() {
        use iprune_obs::{drain_shared, Attribution, MemorySink, StatsTotals};
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Weak, 3);
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        out.stats.check_invariants().unwrap();
        let events = drain_shared(&sink);
        let starts = events.iter().filter(|e| matches!(e, TraceEvent::LayerStart { .. })).count();
        let ends = events.iter().filter(|e| matches!(e, TraceEvent::LayerEnd { .. })).count();
        assert_eq!(starts, dm.info.graph.len(), "one LayerStart per graph op");
        assert_eq!(ends, starts, "every layer scope closes");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TileCommit { .. })));
        assert!(out.power_cycles > 0, "weak power should brown out");
        let attr = Attribution::from_events(&events);
        if let Err(e) = attr.reconcile(&StatsTotals::from(&out.stats)) {
            panic!("trace does not reconcile with SimStats:\n{e:?}");
        }
        let labels: Vec<&str> = attr.rows().iter().map(|r| r.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("conv")), "labels: {labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("fc")), "labels: {labels:?}");
    }

    #[test]
    fn tracing_does_not_change_inference_results() {
        use iprune_obs::MemorySink;
        let (dm, ds) = har_deployed();
        let x = ds.sample(1);
        let mut plain = DeviceSim::new(PowerStrength::Weak, 9);
        let a = infer(&dm, &x, &mut plain, ExecMode::Intermittent).unwrap();
        let mut traced = DeviceSim::new(PowerStrength::Weak, 9);
        traced.set_trace_sink(MemorySink::shared());
        let b = infer(&dm, &x, &mut traced, ExecMode::Intermittent).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.latency_s, b.latency_s);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn continuous_mode_under_harvested_power_fails() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        let err = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Continuous).unwrap_err();
        assert!(matches!(err, EngineError::PowerLostInContinuousMode), "{err}");
    }

    #[test]
    fn stepping_commits_exactly_one_job_per_step() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let mut eng = Engine::new(&dm, &x, &sim, ExecMode::Intermittent);
        let mut steps = 0u64;
        loop {
            let before = eng.jobs_committed();
            match eng.step(&mut sim).unwrap() {
                Step::Committed => {
                    steps += 1;
                    assert_eq!(eng.jobs_committed(), before + 1, "one commit per step");
                }
                Step::Done => break,
            }
        }
        let out = eng.outcome(&sim);
        assert_eq!(steps, out.jobs);
        // the step-driven run matches the monolithic driver bit-for-bit
        let mut sim2 = DeviceSim::new(PowerStrength::Continuous, 0);
        let direct = infer(&dm, &x, &mut sim2, ExecMode::Intermittent).unwrap();
        assert_eq!(out.logits, direct.logits);
        assert_eq!(out.latency_s.to_bits(), direct.latency_s.to_bits());
        assert_eq!(out.stats, direct.stats);
    }

    #[test]
    fn cloned_engine_with_forked_sim_resumes_bit_identically() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(1);
        let mut sim = DeviceSim::new(PowerStrength::Weak, 7);
        let mut eng = Engine::new(&dm, &x, &sim, ExecMode::Intermittent);
        // advance 100 commits, snapshot, then run both copies to completion
        for _ in 0..100 {
            assert_eq!(eng.step(&mut sim).unwrap(), Step::Committed);
        }
        let ckpt = sim.checkpoint();
        let mut fork_sim = sim.fork(&ckpt);
        let mut fork_eng = eng.clone();
        assert!(eng.state_matches(&fork_eng));
        while eng.step(&mut sim).unwrap() != Step::Done {}
        while fork_eng.step(&mut fork_sim).unwrap() != Step::Done {}
        let a = eng.outcome(&sim);
        let b = fork_eng.outcome(&fork_sim);
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        assert_eq!(a.stats, b.stats);
        assert!(eng.state_matches(&fork_eng));
    }

    #[test]
    fn tile_boundaries_are_visible_at_step_granularity() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let mut eng = Engine::new(&dm, &x, &sim, ExecMode::Intermittent);
        let mut boundaries = 0u64;
        while eng.step(&mut sim).unwrap() == Step::Committed {
            if eng.at_tile_boundary() {
                boundaries += 1;
            }
        }
        assert!(eng.at_tile_boundary(), "done is a boundary");
        assert!(boundaries > 0, "write-backs must surface as boundaries");
        assert!(
            boundaries < eng.jobs_committed(),
            "chunk commits must not be boundaries: {} vs {} jobs",
            boundaries,
            eng.jobs_committed()
        );
    }
}
