//! Quantized inference execution against the device simulator.
//!
//! Three modes share one compute path:
//!
//! * [`ExecMode::Intermittent`] — HAWAII-style: every accelerator job's
//!   partial outputs are immediately preserved to NVM together with a
//!   footprint (job counter). A power failure loses the volatile
//!   accumulators; recovery reloads the last committed partials and re-runs
//!   only the interrupted job.
//! * [`ExecMode::TileAtomic`] — SONIC/TAILS-style task-atomic execution:
//!   only completed output tiles are preserved; a power failure re-executes
//!   the whole interrupted tile.
//! * [`ExecMode::Continuous`] — the conventional flow of Figure 2(a):
//!   accumulators stay in VM until an output tile completes, and only final
//!   outputs are written back. Correct only while power never fails.
//!
//! All modes perform the *same* 16-bit fixed-point arithmetic, so their
//! outputs are bit-identical — the crate's central tested invariant.

use crate::deploy::{DeployedLayer, DeployedModel};
use iprune_device::sim::{Commit, DeviceSim, JobCost, SimError};
use iprune_device::trace::SimStats;
use iprune_models::arch::{GraphOp, PrunableKind};
use iprune_obs::TraceEvent;
use iprune_tensor::quant::{requantize, QFormat};
use iprune_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// HAWAII-style: progress preservation after every accelerator job
    /// (finest-grained progress indicator, minimal re-execution).
    Intermittent,
    /// SONIC/TAILS-style task-atomic execution: accumulators stay in VM for
    /// a whole output tile; only completed tiles are preserved (with a
    /// loop-index footprint), and a power failure re-executes the entire
    /// interrupted tile. Fewer NVM writes, more re-executed work.
    TileAtomic,
    /// VM accumulation, output-tile write-back only (continuous power only).
    Continuous,
}

/// Result of one end-to-end inference.
#[derive(Debug, Clone)]
pub struct InferenceOutcome {
    /// Dequantized logits.
    pub logits: Vec<f32>,
    /// Predicted class.
    pub argmax: usize,
    /// End-to-end latency on the simulated device (seconds).
    pub latency_s: f64,
    /// Power cycles experienced.
    pub power_cycles: u64,
    /// Accelerator jobs committed.
    pub jobs: u64,
    /// Accelerator outputs preserved as partials (intermittent mode);
    /// matches the analytic pruning criterion.
    pub preserved_partials: u64,
    /// Job or tile attempts re-issued after a power failure (each one is
    /// re-executed work the progress-preservation granularity paid for).
    pub retries: u64,
    /// Full simulator statistics at completion.
    pub stats: SimStats,
}

/// Engine failure.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying simulator error.
    Sim(SimError),
    /// A job kept failing without committing (energy budget too tight for
    /// forward progress).
    NoProgress {
        /// Layer id where progress stalled.
        layer: usize,
    },
    /// Power failed while executing in continuous mode: all volatile
    /// progress is lost and the inference cannot be resumed.
    PowerLostInContinuousMode,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sim(e) => write!(f, "device simulation error: {e}"),
            EngineError::NoProgress { layer } => {
                write!(f, "no forward progress in layer {layer}")
            }
            EngineError::PowerLostInContinuousMode => {
                write!(f, "power failed while executing in continuous mode")
            }
        }
    }
}

impl Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

const MAX_RETRIES_PER_JOB: u32 = 10_000;
/// Footprint (job counter) bytes preserved with every job.
const FOOTPRINT_BYTES: usize = 4;

struct Counters {
    jobs: u64,
    partials: u64,
    retries: u64,
}

/// Runs one end-to-end inference of `dm` on `input` (`[c,h,w]` or
/// `[1,c,h,w]`) against `sim`.
///
/// Use a fresh simulator per inference if you want per-inference latency;
/// reusing one accumulates time and statistics across calls.
///
/// # Errors
///
/// Propagates simulator nontermination, reports
/// [`EngineError::PowerLostInContinuousMode`] when continuous mode browns
/// out, and [`EngineError::NoProgress`] when a job cannot commit.
pub fn infer(
    dm: &DeployedModel,
    input: &Tensor,
    sim: &mut DeviceSim,
    mode: ExecMode,
) -> Result<InferenceOutcome, EngineError> {
    let mut bufs: Vec<Vec<i16>> = dm.info.buffers.iter().map(|b| vec![0i16; b.numel()]).collect();
    assert_eq!(input.numel(), bufs[0].len(), "input size vs model input buffer");
    let in_fmt = dm.buf_fmts[0];
    for (dst, &v) in bufs[0].iter_mut().zip(input.data()) {
        *dst = in_fmt.quantize(v);
    }

    let mut counters = Counters { jobs: 0, partials: 0, retries: 0 };
    let cycles_at_start = sim.stats().power_cycles;

    for (op_idx, op) in dm.info.graph.iter().enumerate() {
        // Continuous mode has no progress preservation at all: any power
        // cycle so far (even one absorbed inside a blocking transfer) has
        // wiped the volatile accumulators and the inference is lost.
        if mode == ExecMode::Continuous && sim.stats().power_cycles > cycles_at_start {
            return Err(EngineError::PowerLostInContinuousMode);
        }
        sim.emit_scope(|| TraceEvent::LayerStart {
            t: sim.now(),
            op: op_idx as u32,
            label: op_label(op),
        });
        match op {
            GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                let dl = &dm.layers[*layer_id];
                let geom = conv_geometry(dm, *layer_id);
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                exec_gemm(
                    dl,
                    &geom,
                    src_buf,
                    dst_buf,
                    *dst_c_off,
                    *relu,
                    dm.buf_fmts[*src],
                    dm.buf_fmts[*dst],
                    sim,
                    mode,
                    &mut counters,
                )?;
            }
            GraphOp::Fc { layer_id, src, dst, relu } => {
                let dl = &dm.layers[*layer_id];
                let geom = Geometry::Fc;
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                exec_gemm(
                    dl,
                    &geom,
                    src_buf,
                    dst_buf,
                    0,
                    *relu,
                    dm.buf_fmts[*src],
                    dm.buf_fmts[*dst],
                    sim,
                    mode,
                    &mut counters,
                )?;
            }
            GraphOp::MaxPool { src, dst, kh, kw } => {
                let sdims = dm.info.buffers[*src].dims.clone();
                let ddims = dm.info.buffers[*dst].dims.clone();
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                let (oh, ow) = (ddims[1], ddims[2]);
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = i16::MIN;
                            for ky in 0..*kh {
                                for kx in 0..*kw {
                                    let v = src_buf[(ch * ih + oy * kh + ky) * iw + ox * kw + kx];
                                    best = best.max(v);
                                }
                            }
                            dst_buf[(ch * oh + oy) * ow + ox] = best;
                        }
                    }
                }
                sim.run_read(src_buf.len() * 2)?;
                sim.run_cpu(src_buf.len() * 2)?;
                sim.run_write(dst_buf.len() * 2)?;
            }
            GraphOp::GlobalAvgPool { src, dst } => {
                let sdims = dm.info.buffers[*src].dims.clone();
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                let hw = (h * w) as i64;
                for ch in 0..c {
                    let sum: i64 =
                        src_buf[ch * h * w..(ch + 1) * h * w].iter().map(|&v| v as i64).sum();
                    let rounded = if sum >= 0 { (sum + hw / 2) / hw } else { (sum - hw / 2) / hw };
                    dst_buf[ch] = rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
                }
                sim.run_read(src_buf.len() * 2)?;
                sim.run_cpu(src_buf.len())?;
                sim.run_write(dst_buf.len() * 2)?;
            }
            GraphOp::Flatten { src, dst } => {
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                dst_buf.copy_from_slice(src_buf);
                // address reinterpretation — no device work
            }
        }
        sim.emit_scope(|| TraceEvent::LayerEnd { t: sim.now(), op: op_idx as u32 });
    }

    if mode == ExecMode::Continuous && sim.stats().power_cycles > cycles_at_start {
        return Err(EngineError::PowerLostInContinuousMode);
    }

    let logits_buf = bufs.last().expect("at least one buffer");
    let fmt = *dm.buf_fmts.last().expect("formats");
    let logits: Vec<f32> = logits_buf.iter().map(|&q| fmt.dequantize(q)).collect();
    let argmax = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(InferenceOutcome {
        logits,
        argmax,
        latency_s: sim.now(),
        power_cycles: sim.stats().power_cycles,
        jobs: counters.jobs,
        preserved_partials: counters.partials,
        retries: counters.retries,
        stats: sim.stats().clone(),
    })
}

/// Human-readable label for one graph operation, used in layer scopes.
fn op_label(op: &GraphOp) -> String {
    match op {
        GraphOp::Conv { layer_id, .. } => format!("conv{layer_id}"),
        GraphOp::Fc { layer_id, .. } => format!("fc{layer_id}"),
        GraphOp::MaxPool { .. } => "maxpool".to_string(),
        GraphOp::GlobalAvgPool { .. } => "gap".to_string(),
        GraphOp::Flatten { .. } => "flatten".to_string(),
    }
}

/// Conv geometry needed for input gathering.
enum Geometry {
    Conv {
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
        in_h: usize,
        in_w: usize,
        oh: usize,
        ow: usize,
    },
    Fc,
}

fn conv_geometry(dm: &DeployedModel, layer_id: usize) -> Geometry {
    let p = &dm.info.prunables[layer_id];
    match &p.kind {
        PrunableKind::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, .. } => {
            let (oh, ow) = p.out_hw();
            Geometry::Conv {
                kh: *kh,
                kw: *kw,
                stride: *stride,
                pad_h: *pad_h,
                pad_w: *pad_w,
                in_h: *in_h,
                in_w: *in_w,
                oh,
                ow,
            }
        }
        PrunableKind::Fc { .. } => Geometry::Fc,
    }
}

/// Builds the im2col strip `[k][s_len]` for positions
/// `[strip_start, strip_start + s_len)`.
fn gather_strip(
    geom: &Geometry,
    src: &[i16],
    k: usize,
    strip_start: usize,
    s_len: usize,
    out: &mut [i16],
) {
    match geom {
        Geometry::Fc => {
            debug_assert_eq!(s_len, 1);
            out[..k].copy_from_slice(&src[..k]);
        }
        Geometry::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, oh: _, ow } => {
            let khw = kh * kw;
            for ki in 0..k {
                let c = ki / khw;
                let rem = ki % khw;
                let ky = rem / kw;
                let kx = rem % kw;
                for s in 0..s_len {
                    let pos = strip_start + s;
                    let oy = pos / ow;
                    let ox = pos % ow;
                    let iy = (oy * stride + ky) as isize - *pad_h as isize;
                    let ix = (ox * stride + kx) as isize - *pad_w as isize;
                    out[ki * s_len + s] =
                        if iy < 0 || iy >= *in_h as isize || ix < 0 || ix >= *in_w as isize {
                            0
                        } else {
                            src[(c * in_h + iy as usize) * in_w + ix as usize]
                        };
                }
            }
        }
    }
}

/// Writes one output value to the destination buffer.
fn write_output(
    geom: &Geometry,
    dst: &mut [i16],
    dst_c_off: usize,
    m_index: usize,
    pos: usize,
    value: i16,
) {
    match geom {
        Geometry::Fc => dst[m_index] = value,
        Geometry::Conv { oh, ow, .. } => {
            dst[(dst_c_off + m_index) * oh * ow + pos] = value;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_gemm(
    dl: &DeployedLayer,
    geom: &Geometry,
    src: &[i16],
    dst: &mut [i16],
    dst_c_off: usize,
    relu: bool,
    in_fmt: QFormat,
    out_fmt: QFormat,
    sim: &mut DeviceSim,
    mode: ExecMode,
    counters: &mut Counters,
) -> Result<(), EngineError> {
    let plan = &dl.plan;
    let (br, bc, strip) = (plan.tile.br, plan.tile.bc, plan.tile.strip);
    let (in_frac, w_frac) = (in_fmt.frac_bits(), dl.bsr.format().frac_bits());
    let bias_shift = (in_frac + w_frac - dl.bias_fmt.frac_bits()) as u32;

    let mut col = vec![0i16; plan.k * strip];
    let mut strip_start = 0;
    while strip_start < plan.n_spatial {
        let s_len = strip.min(plan.n_spatial - strip_start);
        gather_strip(geom, src, plan.k, strip_start, s_len, &mut col);
        for rb in 0..plan.row_blocks() {
            let rows = plan.rows_in_block(rb);
            let outputs = exec_tile(
                dl,
                sim,
                mode,
                counters,
                &col,
                rb,
                strip_start,
                s_len,
                bias_shift,
                in_frac,
                w_frac,
                out_fmt,
                relu,
            )?;
            for r in 0..rows {
                for s in 0..s_len {
                    write_output(
                        geom,
                        dst,
                        dst_c_off,
                        rb * br + r,
                        strip_start + s,
                        outputs[r * s_len + s],
                    );
                }
            }
        }
        strip_start += s_len;
    }
    let _ = bc;
    Ok(())
}

/// Executes one output tile (one block-row over one spatial strip) under
/// the given preservation strategy and returns its requantized outputs.
#[allow(clippy::too_many_arguments)]
fn exec_tile(
    dl: &DeployedLayer,
    sim: &mut DeviceSim,
    mode: ExecMode,
    counters: &mut Counters,
    col: &[i16],
    rb: usize,
    strip_start: usize,
    s_len: usize,
    bias_shift: u32,
    in_frac: u8,
    w_frac: u8,
    out_fmt: QFormat,
    relu: bool,
) -> Result<Vec<i16>, EngineError> {
    let plan = &dl.plan;
    let (br, bc) = (plan.tile.br, plan.tile.bc);
    let rows = plan.rows_in_block(rb);
    let mut tile_retries = 0u32;

    'tile: loop {
        sim.emit_scope(|| TraceEvent::TileStart {
            t: sim.now(),
            rb: rb as u32,
            strip: strip_start as u32,
        });
        // bias goes into the accumulators before the first chunk
        let mut scratch: Vec<i64> = (0..rows * s_len)
            .map(|i| (dl.bias[rb * br + i / s_len] as i64) << bias_shift)
            .collect();
        sim.run_read(2 * rows)?; // bias fetch

        for (slot, cb) in dl.bsr.row_blocks_iter(rb) {
            let block = dl.bsr.block(slot);
            let cols = bc.min(plan.k - cb * bc);
            // functional compute (identical on every retry)
            let mut work = scratch.clone();
            for r in 0..rows {
                let wrow = &block[r * bc..r * bc + cols];
                for (c, &wv) in wrow.iter().enumerate() {
                    if wv == 0 {
                        continue;
                    }
                    let xrow = &col[(cb * bc + c) * s_len..(cb * bc + c) * s_len + s_len];
                    let acc = &mut work[r * s_len..(r + 1) * s_len];
                    for (a, &xv) in acc.iter_mut().zip(xrow.iter()) {
                        *a += (wv as i64) * (xv as i64);
                    }
                }
            }
            let read_bytes = 2 * br * bc + 4 + 2 * cols * s_len;
            let macs = rows * bc * s_len;
            match mode {
                ExecMode::Intermittent => {
                    let cost = JobCost {
                        lea_macs: macs,
                        preserve_bytes: 4 * rows * s_len + FOOTPRINT_BYTES,
                        cpu_cycles: rows + 8,
                    };
                    commit_job(dl, sim, mode, read_bytes, cost, counters)?;
                    counters.jobs += 1;
                    counters.partials += (rows * s_len) as u64;
                }
                ExecMode::TileAtomic | ExecMode::Continuous => {
                    sim.run_read(read_bytes)?;
                    let cost = JobCost { lea_macs: macs, preserve_bytes: 0, cpu_cycles: rows + 8 };
                    match sim.run_job(cost)? {
                        Commit::Committed => counters.jobs += 1,
                        Commit::PowerFailed => {
                            if mode == ExecMode::Continuous {
                                return Err(EngineError::PowerLostInContinuousMode);
                            }
                            // task-atomic: volatile accumulators are gone;
                            // re-read the loop indices and redo the tile
                            sim.recover(16)?;
                            counters.retries += 1;
                            tile_retries += 1;
                            if tile_retries > MAX_RETRIES_PER_JOB {
                                return Err(EngineError::NoProgress { layer: dl.layer_id });
                            }
                            continue 'tile;
                        }
                    }
                }
            }
            scratch = work;
        }

        // write-back: requantize + ReLU + store the i16 outputs
        let mut outputs = vec![0i16; rows * s_len];
        for (i, &acc) in scratch.iter().enumerate() {
            let mut v = requantize(acc, in_frac, w_frac, out_fmt.frac_bits());
            if relu && v < 0 {
                v = 0;
            }
            outputs[i] = v;
        }
        let out_bytes = 2 * rows * s_len;
        match mode {
            ExecMode::Intermittent => {
                let cost = JobCost {
                    lea_macs: 0,
                    preserve_bytes: out_bytes + FOOTPRINT_BYTES,
                    cpu_cycles: 2 * rows * s_len,
                };
                commit_job(dl, sim, mode, 0, cost, counters)?;
                counters.jobs += 1;
            }
            ExecMode::TileAtomic => {
                let cost = JobCost {
                    lea_macs: 0,
                    preserve_bytes: out_bytes + FOOTPRINT_BYTES,
                    cpu_cycles: 2 * rows * s_len,
                };
                match sim.run_job(cost)? {
                    Commit::Committed => counters.jobs += 1,
                    Commit::PowerFailed => {
                        sim.recover(16)?;
                        counters.retries += 1;
                        tile_retries += 1;
                        if tile_retries > MAX_RETRIES_PER_JOB {
                            return Err(EngineError::NoProgress { layer: dl.layer_id });
                        }
                        continue 'tile;
                    }
                }
            }
            ExecMode::Continuous => {
                sim.run_cpu(2 * rows * s_len)?;
                sim.run_write(out_bytes)?;
            }
        }
        sim.emit_scope(|| TraceEvent::TileCommit {
            t: sim.now(),
            rb: rb as u32,
            strip: strip_start as u32,
        });
        return Ok(outputs);
    }
}

/// Issues the reads and the job, retrying through power failures in
/// intermittent mode.
fn commit_job(
    dl: &DeployedLayer,
    sim: &mut DeviceSim,
    mode: ExecMode,
    read_bytes: usize,
    cost: JobCost,
    counters: &mut Counters,
) -> Result<(), EngineError> {
    let mut retries = 0u32;
    loop {
        sim.run_read(read_bytes)?;
        match sim.run_job(cost)? {
            Commit::Committed => return Ok(()),
            Commit::PowerFailed => {
                if mode == ExecMode::Continuous {
                    return Err(EngineError::PowerLostInContinuousMode);
                }
                sim.recover(dl.recovery_bytes())?;
                counters.retries += 1;
                retries += 1;
                if retries > MAX_RETRIES_PER_JOB {
                    return Err(EngineError::NoProgress { layer: dl.layer_id });
                }
            }
        }
    }
}

/// Borrow two distinct buffers mutably.
fn split_bufs(bufs: &mut [Vec<i16>], src: usize, dst: usize) -> (&[i16], &mut [i16]) {
    assert_ne!(src, dst, "graph ops must not read and write the same buffer");
    if src < dst {
        let (a, b) = bufs.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = bufs.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use crate::graph_exec::run_graph_logits;
    use iprune_device::PowerStrength;
    use iprune_models::zoo::App;

    fn har_deployed() -> (DeployedModel, iprune_datasets::Dataset) {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(12, 42);
        let dm = deploy(&mut model, &ds, 4);
        (dm, ds)
    }

    #[test]
    fn quantized_matches_float_reference() {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(6, 42);
        let dm = deploy(&mut model, &ds, 4);
        let weights = model.extract_weights();
        for i in 0..6 {
            let x = ds.sample(i);
            let float_logits = run_graph_logits(&model.info, &weights, &x);
            let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
            let out = infer(&dm, &x, &mut sim, ExecMode::Continuous).unwrap();
            for (q, f) in out.logits.iter().zip(float_logits.iter()) {
                assert!((q - f).abs() < 0.05, "sample {i}: quantized {q} vs float {f}");
            }
        }
    }

    #[test]
    fn intermittent_equals_continuous_bitwise() {
        let (dm, ds) = har_deployed();
        for i in 0..4 {
            let x = ds.sample(i);
            let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
            let cont = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
            for (strength, seed) in [
                (PowerStrength::Continuous, 0),
                (PowerStrength::Strong, 3),
                (PowerStrength::Weak, 7),
            ] {
                let mut sim_i = DeviceSim::new(strength, seed);
                let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
                assert_eq!(inter.logits, cont.logits, "sample {i} under {strength:?}");
            }
        }
    }

    #[test]
    fn intermittent_preserves_analytic_acc_outputs() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        assert_eq!(out.preserved_partials, dm.total_acc_outputs() as u64);
    }

    #[test]
    fn weak_power_causes_power_cycles_and_higher_latency() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &x, &mut sim_c, ExecMode::Intermittent).unwrap();
        let mut sim_w = DeviceSim::new(PowerStrength::Weak, 1);
        let weak = infer(&dm, &x, &mut sim_w, ExecMode::Intermittent).unwrap();
        assert_eq!(cont.power_cycles, 0);
        assert!(weak.power_cycles > 0, "weak power should brown out");
        assert!(weak.latency_s > cont.latency_s);
        assert_eq!(weak.logits, cont.logits, "recovery must not corrupt outputs");
    }

    #[test]
    fn intermittent_writes_dominate_latency() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        assert!(
            out.stats.write_share() > 0.4,
            "NVM writes should dominate intermittent inference, got {:.2}",
            out.stats.write_share()
        );
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &ds.sample(0), &mut sim_c, ExecMode::Continuous).unwrap();
        assert!(
            cont.stats.write_share() < out.stats.write_share(),
            "continuous mode should write far less"
        );
        assert!(cont.latency_s < out.latency_s);
    }

    #[test]
    fn tile_atomic_matches_intermittent_outputs() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(2);
        let mut sim_i = DeviceSim::new(PowerStrength::Continuous, 0);
        let reference = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
        for (strength, seed) in [(PowerStrength::Strong, 4), (PowerStrength::Weak, 9)] {
            let mut sim_t = DeviceSim::new(strength, seed);
            let out = infer(&dm, &x, &mut sim_t, ExecMode::TileAtomic).unwrap();
            assert_eq!(out.logits, reference.logits, "{strength:?}");
        }
    }

    #[test]
    fn tile_atomic_writes_less_but_wastes_more() {
        let (dm, ds) = har_deployed();
        let x = ds.sample(0);
        let mut sim_job = DeviceSim::new(PowerStrength::Weak, 6);
        let job = infer(&dm, &x, &mut sim_job, ExecMode::Intermittent).unwrap();
        let mut sim_tile = DeviceSim::new(PowerStrength::Weak, 6);
        let tile = infer(&dm, &x, &mut sim_tile, ExecMode::TileAtomic).unwrap();
        assert!(
            tile.stats.nvm_write_bytes < job.stats.nvm_write_bytes / 2,
            "tile-atomic should write far less: {} vs {}",
            tile.stats.nvm_write_bytes,
            job.stats.nvm_write_bytes
        );
        // the coarser progress indicator re-executes whole tiles: under
        // harvested power, more jobs run than a failure-free execution needs
        let mut sim_ref = DeviceSim::new(PowerStrength::Continuous, 0);
        let nominal = infer(&dm, &x, &mut sim_ref, ExecMode::TileAtomic).unwrap();
        assert!(
            tile.jobs >= nominal.jobs,
            "re-execution can only add jobs: {} vs nominal {}",
            tile.jobs,
            nominal.jobs
        );
        assert_eq!(tile.preserved_partials, 0);
    }

    #[test]
    fn fully_pruned_rows_still_produce_bias_outputs() {
        // Zero every weight of HAR's conv2: the engine must still write the
        // (bias-only) outputs of every row block, in all modes, identically.
        use iprune_tensor::layer::Layer;
        let mut model = App::Har.build();
        model.visit_params(&mut |p| {
            if p.name == "conv1.w" {
                p.value.fill_zero();
            }
        });
        let ds = App::Har.dataset(4, 42);
        let dm = deploy(&mut model, &ds, 2);
        // layer 1's BSR is empty
        assert_eq!(dm.layers[1].bsr.nnz_blocks(), 0);
        let x = ds.sample(0);
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
        let mut sim_i = DeviceSim::new(PowerStrength::Weak, 5);
        let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
        assert_eq!(cont.logits, inter.logits);
        assert!(cont.logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn traced_inference_has_layer_scopes_and_reconciles() {
        use iprune_obs::{drain_shared, Attribution, MemorySink, StatsTotals};
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Weak, 3);
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        out.stats.check_invariants().unwrap();
        let events = drain_shared(&sink);
        let starts = events.iter().filter(|e| matches!(e, TraceEvent::LayerStart { .. })).count();
        let ends = events.iter().filter(|e| matches!(e, TraceEvent::LayerEnd { .. })).count();
        assert_eq!(starts, dm.info.graph.len(), "one LayerStart per graph op");
        assert_eq!(ends, starts, "every layer scope closes");
        assert!(events.iter().any(|e| matches!(e, TraceEvent::TileCommit { .. })));
        assert!(out.power_cycles > 0, "weak power should brown out");
        let attr = Attribution::from_events(&events);
        if let Err(e) = attr.reconcile(&StatsTotals::from(&out.stats)) {
            panic!("trace does not reconcile with SimStats:\n{e:?}");
        }
        let labels: Vec<&str> = attr.rows().iter().map(|r| r.label.as_str()).collect();
        assert!(labels.iter().any(|l| l.starts_with("conv")), "labels: {labels:?}");
        assert!(labels.iter().any(|l| l.starts_with("fc")), "labels: {labels:?}");
    }

    #[test]
    fn tracing_does_not_change_inference_results() {
        use iprune_obs::MemorySink;
        let (dm, ds) = har_deployed();
        let x = ds.sample(1);
        let mut plain = DeviceSim::new(PowerStrength::Weak, 9);
        let a = infer(&dm, &x, &mut plain, ExecMode::Intermittent).unwrap();
        let mut traced = DeviceSim::new(PowerStrength::Weak, 9);
        traced.set_trace_sink(MemorySink::shared());
        let b = infer(&dm, &x, &mut traced, ExecMode::Intermittent).unwrap();
        assert_eq!(a.logits, b.logits);
        assert_eq!(a.latency_s, b.latency_s);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn continuous_mode_under_harvested_power_fails() {
        let (dm, ds) = har_deployed();
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        let err = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Continuous).unwrap_err();
        assert!(matches!(err, EngineError::PowerLostInContinuousMode), "{err}");
    }
}
