//! Tile-size and accelerator-operation selection.
//!
//! HAWAII⁺ picks, per layer, the shape of one accelerator operation — the
//! weight block (`br` output features × `bc` reduction elements) and the
//! spatial strip length over which that block is reused — to fully utilize
//! the 8 KB VM and maximize data reuse (one of the [19]-style optimizations
//! the paper folds into HAWAII⁺). The reduction chunk `bc` is what couples
//! pruning to intermittence: every chunk of every output element becomes one
//! preserved accelerator output, so `acc_outputs = out_elems · ⌈K/bc⌉`.

use iprune_models::arch::{PrunableInfo, PrunableKind};

/// VM budget available to one layer's working set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmBudget {
    /// Bytes of VM usable for tiles (total SRAM minus engine reserve).
    pub tile_bytes: usize,
}

impl Default for VmBudget {
    fn default() -> Self {
        // 8 KB SRAM minus ~2 KB of engine state (stack, footprint buffers,
        // DMA descriptors).
        Self { tile_bytes: 6 * 1024 }
    }
}

/// Shape of one accelerator operation and its reuse strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Output features per weight block (accelerator vector width).
    pub br: usize,
    /// Reduction elements per weight block — the partial-accumulation
    /// chunk; every output element is preserved once per chunk.
    pub bc: usize,
    /// Spatial positions over which one weight block is reused before the
    /// next block is fetched.
    pub strip: usize,
}

impl TilePlan {
    /// VM bytes used by the working set: weight block + input strip +
    /// 32-bit accumulators.
    pub fn vm_bytes(&self) -> usize {
        self.br * self.bc * 2 + self.bc * self.strip * 2 + 4 * self.br * self.strip
    }
}

/// Selects the accelerator-operation shape for a prunable layer.
///
/// The reduction chunk follows the LEA operation type the engine would pick:
///
/// * 1×1 convolutions run channel-vector MACs: `bc = min(4, cin)`;
/// * temporal (k×1) convolutions stream 4-sample bursts: `bc = 4`;
/// * spatial k×k convolutions on maps wide enough for a row strip use one
///   kernel row: `bc = kw`; on narrow maps the strip degrades to paired
///   MACs: `bc = 2`;
/// * fully-connected layers use the paired Q15 MAC: `bc = 2`.
pub fn select_plan(p: &PrunableInfo, budget: &VmBudget) -> TilePlan {
    let (m, n_spatial) = (out_features(p), spatial(p));
    let bc = match &p.kind {
        PrunableKind::Conv { cin, kh, kw, in_w, .. } => {
            if *kh == 1 && *kw == 1 {
                4.min(*cin)
            } else if *kw == 1 {
                4
            } else if *in_w >= 16 {
                *kw
            } else {
                2
            }
        }
        PrunableKind::Fc { .. } => 2,
    };
    let br = match &p.kind {
        PrunableKind::Conv { .. } => 8.min(m),
        PrunableKind::Fc { .. } => 16.min(m),
    };
    // Strip: reuse the block across spatial positions while the 32-bit
    // accumulator region fits the budget.
    let acc_budget = budget.tile_bytes / 2; // half for accumulators
    let max_strip = (acc_budget / (4 * br)).max(1);
    let strip = n_spatial.min(64).min(max_strip);
    let plan = TilePlan { br, bc, strip };
    debug_assert!(plan.vm_bytes() <= budget.tile_bytes, "plan exceeds VM budget");
    plan
}

/// Output features (`cout` or `dout`) of a prunable layer.
pub fn out_features(p: &PrunableInfo) -> usize {
    match &p.kind {
        PrunableKind::Conv { cout, .. } => *cout,
        PrunableKind::Fc { dout, .. } => *dout,
    }
}

/// Spatial positions (`oh·ow` for conv, 1 for FC).
pub fn spatial(p: &PrunableInfo) -> usize {
    let (oh, ow) = p.out_hw();
    match &p.kind {
        PrunableKind::Conv { .. } => oh * ow,
        PrunableKind::Fc { .. } => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    #[test]
    fn all_paper_layers_fit_vm() {
        let budget = VmBudget::default();
        for app in App::all() {
            let m = app.build();
            for p in &m.info.prunables {
                let plan = select_plan(p, &budget);
                assert!(
                    plan.vm_bytes() <= budget.tile_bytes,
                    "{} layer {} plan {:?} uses {} bytes",
                    app.name(),
                    p.name,
                    plan,
                    plan.vm_bytes()
                );
                assert!(plan.bc >= 1 && plan.br >= 1 && plan.strip >= 1);
            }
        }
    }

    #[test]
    fn op_type_rules() {
        let sqn = App::Sqn.build();
        // conv1 is 3x3 on a 32-wide map: row-strip
        assert_eq!(select_plan(&sqn.info.prunables[0], &VmBudget::default()).bc, 3);
        // fire1.squeeze is 1x1 over 24 channels: channel-vector (4)
        assert_eq!(select_plan(&sqn.info.prunables[1], &VmBudget::default()).bc, 4);
        let har = App::Har.build();
        // temporal 3x1 kernels stream 4-sample bursts
        assert_eq!(select_plan(&har.info.prunables[0], &VmBudget::default()).bc, 4);
        // FC uses paired MACs
        assert_eq!(select_plan(&har.info.prunables[3], &VmBudget::default()).bc, 2);
        let cks = App::Cks.build();
        // 3x3 on a 13-wide spectrogram: narrow map, paired MACs
        assert_eq!(select_plan(&cks.info.prunables[0], &VmBudget::default()).bc, 2);
    }

    #[test]
    fn strip_shrinks_under_small_budget() {
        let sqn = App::Sqn.build();
        let small = VmBudget { tile_bytes: 512 };
        let plan = select_plan(&sqn.info.prunables[0], &small);
        assert!(plan.vm_bytes() <= 512);
        assert!(plan.strip < 16);
    }
}
