//! Model deployment: quantization, calibration, and BSR packing.
//!
//! Mirrors the paper's deployment flow (Section IV-A): model parameters are
//! quantized from 32-bit float to a 16-bit fixed-point representation and
//! packed, layer by layer, into the BSR format at the accelerator-operation
//! block granularity chosen by the tile planner. Activation formats are
//! calibrated by running the float reference executor over a handful of
//! samples.

use crate::bsr::BsrMatrix;
use crate::graph_exec::run_graph;
use crate::plan::LayerPlan;
use iprune_datasets::Dataset;
use iprune_models::arch::{GraphOp, ModelInfo};
use iprune_models::{LayerWeights, Model};
use iprune_tensor::quant::{QFormat, QTensor};

/// One deployed (quantized, BSR-packed) prunable layer.
#[derive(Debug, Clone)]
pub struct DeployedLayer {
    /// Prunable layer id.
    pub layer_id: usize,
    /// Execution plan (tile shape, counts).
    pub plan: LayerPlan,
    /// Block-sparse quantized weights.
    pub bsr: BsrMatrix,
    /// Quantized biases (one per output feature).
    pub bias: Vec<i16>,
    /// Fixed-point format of the biases.
    pub bias_fmt: QFormat,
}

impl DeployedLayer {
    /// NVM bytes re-fetched during progress recovery for this layer:
    /// footprint and index arrays, the partial-accumulator scratch, the
    /// input sub-strip, and the interrupted weight block.
    pub fn recovery_bytes(&self) -> usize {
        let t = self.plan.tile;
        16 + 4 * t.br * t.strip + 2 * t.bc * t.strip + 2 * t.br * t.bc
    }
}

/// A model ready to execute on the device simulator.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    /// Structural description (cloned from the trained model).
    pub info: ModelInfo,
    /// Deployed layers, indexed by layer id.
    pub layers: Vec<DeployedLayer>,
    /// Fixed-point format of each activation buffer.
    pub buf_fmts: Vec<QFormat>,
}

impl DeployedModel {
    /// Deployed model size in bytes with BSR storage (weights, both index
    /// arrays, and biases) — the "Model Size" column of Table III for
    /// pruned models.
    pub fn sparse_size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bsr.storage_bytes() + l.bias.len() * 2).sum()
    }

    /// Deployed model size with dense storage (the natural choice for the
    /// unpruned baseline).
    pub fn dense_size_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.bsr.dense_bytes() + l.bias.len() * 2).sum()
    }

    /// Size as reported in the paper's tables: dense when nothing was
    /// pruned, BSR otherwise (BSR only pays off with sufficient sparsity).
    pub fn reported_size_bytes(&self) -> usize {
        self.sparse_size_bytes().min(self.dense_size_bytes())
    }

    /// Total accelerator outputs per inference (the pruning criterion).
    pub fn total_acc_outputs(&self) -> usize {
        self.layers.iter().map(|l| l.plan.bsr_acc_outputs(&l.bsr)).sum()
    }

    /// Total MACs per inference (whole blocks, padded lanes included).
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(|l| l.plan.bsr_macs(&l.bsr)).sum()
    }
}

/// Default number of calibration samples.
pub const DEFAULT_CALIBRATION: usize = 8;

/// Deploys a trained model: calibrates activation formats on up to
/// `n_calib` samples of `calib`, quantizes weights and biases to 16-bit
/// fixed point, and packs each layer into BSR at its planned block shape.
///
/// # Panics
///
/// Panics if `calib` is empty or its sample shape differs from the model
/// input.
pub fn deploy(model: &mut Model, calib: &Dataset, n_calib: usize) -> DeployedModel {
    assert!(!calib.is_empty(), "calibration set must not be empty");
    let weights = model.extract_weights();
    let info = model.info.clone();

    // --- calibrate per-buffer ranges with the float reference ---
    let mut max_abs = vec![0.0f32; info.buffers.len()];
    for i in 0..n_calib.min(calib.len()) {
        let bufs = run_graph(&info, &weights, &calib.sample(i));
        for (m, buf) in max_abs.iter_mut().zip(bufs.iter()) {
            for &v in buf {
                *m = m.max(v.abs());
            }
        }
    }
    let mut buf_fmts: Vec<QFormat> =
        max_abs.iter().map(|&m| QFormat::for_max_abs(m * 1.1 + 1e-6)).collect();
    // Shape-preserving ops must keep their input format so the quantized
    // engine can copy/compare values without requantization.
    for op in &info.graph {
        match op {
            GraphOp::MaxPool { src, dst, .. }
            | GraphOp::GlobalAvgPool { src, dst }
            | GraphOp::Flatten { src, dst } => buf_fmts[*dst] = buf_fmts[*src],
            _ => {}
        }
    }

    // --- quantize and pack each prunable layer ---
    let layers: Vec<DeployedLayer> = weights
        .iter()
        .map(|lw: &LayerWeights| {
            let p = &info.prunables[lw.layer_id];
            let plan = LayerPlan::for_layer(p);
            let qw = QTensor::quantize(&lw.w);
            let bsr = BsrMatrix::from_dense(
                qw.data(),
                plan.m,
                plan.k,
                plan.tile.br,
                plan.tile.bc,
                qw.format(),
            );
            // Bias is added in the (in_frac + w_frac)-bit accumulator; its
            // format must not exceed that depth.
            let in_fmt = input_fmt_of_layer(&info, lw.layer_id, &buf_fmts);
            let acc_frac = in_fmt.frac_bits() + qw.format().frac_bits();
            let natural = QFormat::for_max_abs(lw.b.max_abs().max(1e-6));
            let bias_fmt = QFormat::new(natural.frac_bits().min(acc_frac).min(15));
            let bias: Vec<i16> = lw.b.data().iter().map(|&v| bias_fmt.quantize(v)).collect();
            DeployedLayer { layer_id: lw.layer_id, plan, bsr, bias, bias_fmt }
        })
        .collect();

    DeployedModel { info, layers, buf_fmts }
}

/// The activation format of the buffer a prunable layer reads.
fn input_fmt_of_layer(info: &ModelInfo, layer_id: usize, fmts: &[QFormat]) -> QFormat {
    for op in &info.graph {
        match op {
            GraphOp::Conv { layer_id: l, src, .. } | GraphOp::Fc { layer_id: l, src, .. }
                if *l == layer_id =>
            {
                return fmts[*src];
            }
            _ => {}
        }
    }
    panic!("layer {layer_id} not found in graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    #[test]
    fn deploy_all_apps() {
        for app in App::all() {
            let mut model = app.build();
            let calib = app.dataset(4, 7);
            let dm = deploy(&mut model, &calib, 4);
            assert_eq!(dm.layers.len(), model.info.prunables.len());
            // Unpruned: dense size should be close to the Table II budget.
            let dense_kb = dm.dense_size_bytes() as f64 / 1024.0;
            let expect_kb = model.info.dense_size_bytes() as f64 / 1024.0;
            assert!((dense_kb - expect_kb).abs() < 0.5, "{}: {dense_kb} KB", app.name());
            // Unpruned acc outputs match the analytic dense count closely
            // (quantization may zero a few tiny blocks).
            let analytic = crate::plan::dense_model_acc_outputs(&model.info) as f64;
            let got = dm.total_acc_outputs() as f64;
            assert!(got <= analytic * 1.001 && got > 0.9 * analytic, "{}", app.name());
        }
    }

    #[test]
    fn pool_buffers_share_input_format() {
        let mut model = App::Cks.build();
        let calib = App::Cks.dataset(2, 3);
        let dm = deploy(&mut model, &calib, 2);
        for op in &dm.info.graph {
            if let GraphOp::MaxPool { src, dst, .. } = op {
                assert_eq!(dm.buf_fmts[*src], dm.buf_fmts[*dst]);
            }
        }
    }

    #[test]
    fn reported_size_prefers_smaller_encoding() {
        let mut model = App::Har.build();
        let calib = App::Har.dataset(2, 3);
        let dm = deploy(&mut model, &calib, 2);
        // unpruned: dense beats BSR (indexes are pure overhead)
        assert_eq!(dm.reported_size_bytes(), dm.dense_size_bytes().min(dm.sparse_size_bytes()));
        assert!(dm.sparse_size_bytes() > dm.dense_size_bytes());
    }
}
