//! HAWAII⁺-style intermittent inference engine.
//!
//! This crate reimplements, over the [`iprune_device`] simulator, the
//! deployment half of the paper: a tiled, job-granular inference engine in
//! the spirit of HAWAII (job counters as progress indicators, immediate
//! preservation of accelerator outputs) extended with the optimizations the
//! paper folds into HAWAII⁺ — BSR sparse weight storage, tile-size selection
//! to fill the 8 KB VM, and spatial data reuse — plus a conventional
//! continuous-power execution mode used for the motivation experiment
//! (Figure 2(a)) and as the functional reference.
//!
//! The engine *really computes* quantized inference: deployment quantizes a
//! trained model to 16-bit fixed point, execution runs block-sparse GEMMs
//! job by job against the device simulator, loses volatile state at every
//! power failure, and resumes from the preserved job counter — so
//! "intermittent output ≡ continuous output" is a testable invariant rather
//! than an assumption.

pub mod bsr;
pub mod deploy;
pub mod exec;
pub mod graph_exec;
pub mod layout;
pub mod plan;
pub mod tiling;

pub use bsr::BsrMatrix;
pub use deploy::{deploy, DeployedLayer, DeployedModel};
pub use exec::{infer, Engine, EngineError, ExecMode, InferenceOutcome, Step};
pub use plan::LayerPlan;
pub use tiling::{TilePlan, VmBudget};
