//! Per-layer execution plans and accelerator-output counting.
//!
//! The number of accelerator outputs is iPrune's pruning criterion
//! (Section III-B): it is computed "easily based on the DNN model structure
//! and the inference engine configuration (e.g., the tile size and
//! dataflow)". [`LayerPlan`] is exactly that computation, and the executing
//! engine is tested to perform precisely this many output preservations.

use crate::bsr::BsrMatrix;
use crate::tiling::{out_features, select_plan, spatial, TilePlan, VmBudget};
use iprune_models::arch::{ModelInfo, PrunableInfo};
use iprune_tensor::Tensor;

/// Execution plan of one prunable layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPlan {
    /// Prunable layer id.
    pub layer_id: usize,
    /// Output features (GEMM rows).
    pub m: usize,
    /// Dense reduction length (GEMM depth).
    pub k: usize,
    /// Spatial positions sharing the weight matrix (`oh·ow`, 1 for FC).
    pub n_spatial: usize,
    /// Accelerator-operation shape.
    pub tile: TilePlan,
}

impl LayerPlan {
    /// Builds the plan for a layer under the default VM budget.
    pub fn for_layer(p: &PrunableInfo) -> Self {
        Self::for_layer_with_budget(p, &VmBudget::default())
    }

    /// Builds the plan for a layer under an explicit VM budget.
    pub fn for_layer_with_budget(p: &PrunableInfo, budget: &VmBudget) -> Self {
        Self {
            layer_id: p.layer_id,
            m: out_features(p),
            k: p.k_len(),
            n_spatial: spatial(p),
            tile: select_plan(p, budget),
        }
    }

    /// Number of block rows (`⌈m/br⌉`).
    pub fn row_blocks(&self) -> usize {
        self.m.div_ceil(self.tile.br)
    }

    /// Number of reduction chunks (`⌈k/bc⌉`).
    pub fn chunks(&self) -> usize {
        self.k.div_ceil(self.tile.bc)
    }

    /// Rows actually present in block-row `rb` (the last may be ragged).
    pub fn rows_in_block(&self, rb: usize) -> usize {
        self.tile.br.min(self.m - rb * self.tile.br)
    }

    /// Accelerator outputs of the dense (unpruned) layer:
    /// every output element is preserved once per reduction chunk.
    pub fn dense_acc_outputs(&self) -> usize {
        self.n_spatial * self.chunks() * self.m
    }

    /// Accelerator outputs given a pruned BSR weight matrix: per block row,
    /// only surviving chunks produce (and preserve) partials.
    ///
    /// # Panics
    ///
    /// Panics if the BSR geometry disagrees with the plan.
    pub fn bsr_acc_outputs(&self, bsr: &BsrMatrix) -> usize {
        assert_eq!(bsr.rows(), self.m, "bsr rows vs plan");
        assert_eq!(bsr.cols(), self.k, "bsr cols vs plan");
        assert_eq!(bsr.block_height(), self.tile.br, "bsr block height");
        assert_eq!(bsr.block_width(), self.tile.bc, "bsr block width");
        let mut outputs = 0usize;
        for rb in 0..self.row_blocks() {
            outputs += bsr.row_nnz(rb) * self.rows_in_block(rb);
        }
        outputs * self.n_spatial
    }

    /// MACs executed given a pruned BSR matrix (padded block lanes included,
    /// as the accelerator computes whole blocks).
    pub fn bsr_macs(&self, bsr: &BsrMatrix) -> usize {
        let mut macs = 0usize;
        for rb in 0..self.row_blocks() {
            macs += bsr.row_nnz(rb) * self.rows_in_block(rb) * self.tile.bc;
        }
        macs * self.n_spatial
    }

    /// Accelerator outputs if blocks are pruned according to a float mask
    /// (same shape as the weight tensor, 0 = pruned): a block survives when
    /// any of its weights survives.
    pub fn masked_acc_outputs(&self, mask: &Tensor) -> usize {
        let grid = self.block_survivors(mask);
        let mut outputs = 0usize;
        for (rb, row) in grid.iter().enumerate().take(self.row_blocks()) {
            let nnz = row.iter().filter(|&&s| s).count();
            outputs += nnz * self.rows_in_block(rb);
        }
        outputs * self.n_spatial
    }

    /// Per block-row survival flags of each block column under `mask`.
    ///
    /// # Panics
    ///
    /// Panics if the mask element count differs from `m·k`.
    pub fn block_survivors(&self, mask: &Tensor) -> Vec<Vec<bool>> {
        assert_eq!(mask.numel(), self.m * self.k, "mask size vs plan");
        let data = mask.data();
        let (br, bc) = (self.tile.br, self.tile.bc);
        (0..self.row_blocks())
            .map(|rb| {
                (0..self.chunks())
                    .map(|cb| {
                        let rows = self.rows_in_block(rb);
                        let cols = bc.min(self.k - cb * bc);
                        (0..rows).any(|r| {
                            let row = rb * br + r;
                            (0..cols).any(|c| data[row * self.k + cb * bc + c] != 0.0)
                        })
                    })
                    .collect()
            })
            .collect()
    }
}

/// Plans for every prunable layer of a model.
pub fn model_plans(info: &ModelInfo) -> Vec<LayerPlan> {
    info.prunables.iter().map(LayerPlan::for_layer).collect()
}

/// Total dense accelerator outputs of a model (the Table II column).
pub fn dense_model_acc_outputs(info: &ModelInfo) -> usize {
    model_plans(info).iter().map(|p| p.dense_acc_outputs()).sum()
}

/// The paper's qualitative "diversity" label: how unevenly accelerator
/// outputs are distributed per weight across layers, measured as the
/// max/min ratio of per-layer `acc_outputs / weights`.
pub fn diversity_ratio(info: &ModelInfo) -> f64 {
    let plans = model_plans(info);
    let densities: Vec<f64> = info
        .prunables
        .iter()
        .zip(&plans)
        .map(|(p, plan)| plan.dense_acc_outputs() as f64 / p.weights() as f64)
        .collect();
    let max = densities.iter().cloned().fold(f64::MIN, f64::max);
    let min = densities.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

/// Maps a diversity ratio to the paper's Low/Medium/High labels.
pub fn diversity_label(ratio: f64) -> &'static str {
    if ratio < 32.0 {
        "Low"
    } else if ratio < 128.0 {
        "Medium"
    } else {
        "High"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;
    use iprune_tensor::quant::QFormat;

    #[test]
    fn dense_outputs_near_table2() {
        // Paper Table II: SQN 1483 K, HAR 77 K, CKS 1582 K.
        let targets = [(App::Sqn, 1_483_000.0), (App::Har, 77_000.0), (App::Cks, 1_582_000.0)];
        for (app, target) in targets {
            let m = app.build();
            let got = dense_model_acc_outputs(&m.info) as f64;
            let ratio = got / target;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{}: {} acc outputs vs paper {} (ratio {:.2})",
                app.name(),
                got,
                target,
                ratio
            );
        }
    }

    #[test]
    fn diversity_ordering_matches_table2() {
        let sqn = diversity_ratio(&App::Sqn.build().info);
        let har = diversity_ratio(&App::Har.build().info);
        let cks = diversity_ratio(&App::Cks.build().info);
        assert!(sqn < har && har < cks, "sqn {sqn:.1} har {har:.1} cks {cks:.1}");
        assert_eq!(diversity_label(sqn), "Low");
        assert_eq!(diversity_label(har), "Medium");
        assert_eq!(diversity_label(cks), "High");
    }

    #[test]
    fn bsr_counts_match_mask_counts() {
        let m = App::Har.build();
        let p = &m.info.prunables[1];
        let plan = LayerPlan::for_layer(p);
        // Build a mask that prunes a checkerboard of blocks.
        let mut mask = Tensor::full(&[plan.m * plan.k], 1.0);
        for rb in 0..plan.row_blocks() {
            for cb in 0..plan.chunks() {
                if (rb + cb) % 2 == 0 {
                    for r in 0..plan.rows_in_block(rb) {
                        let row = rb * plan.tile.br + r;
                        for c in 0..plan.tile.bc.min(plan.k - cb * plan.tile.bc) {
                            mask.data_mut()[row * plan.k + cb * plan.tile.bc + c] = 0.0;
                        }
                    }
                }
            }
        }
        // Dense i16 weights pruned by the same checkerboard
        let dense: Vec<i16> = (0..plan.m * plan.k)
            .map(|i| {
                let v = mask.data()[i];
                if v == 0.0 {
                    0
                } else {
                    ((i % 50) + 1) as i16
                }
            })
            .collect();
        let bsr = BsrMatrix::from_dense(
            &dense,
            plan.m,
            plan.k,
            plan.tile.br,
            plan.tile.bc,
            QFormat::new(12),
        );
        assert_eq!(plan.masked_acc_outputs(&mask), plan.bsr_acc_outputs(&bsr));
        assert!(plan.bsr_acc_outputs(&bsr) < plan.dense_acc_outputs());
    }

    #[test]
    fn dense_equals_full_mask() {
        let m = App::Cks.build();
        for p in &m.info.prunables {
            let plan = LayerPlan::for_layer(p);
            let mask = Tensor::full(&[plan.m * plan.k], 1.0);
            assert_eq!(plan.masked_acc_outputs(&mask), plan.dense_acc_outputs(), "{}", p.name);
        }
    }

    #[test]
    fn pruning_blocks_reduces_macs() {
        let m = App::Har.build();
        let p = &m.info.prunables[2];
        let plan = LayerPlan::for_layer(p);
        let full: Vec<i16> = vec![1; plan.m * plan.k];
        let mut half = full.clone();
        // zero the second half of every row's chunks
        for r in 0..plan.m {
            for c in plan.k / 2..plan.k {
                half[r * plan.k + c] = 0;
            }
        }
        let fmt = QFormat::new(12);
        let b_full = BsrMatrix::from_dense(&full, plan.m, plan.k, plan.tile.br, plan.tile.bc, fmt);
        let b_half = BsrMatrix::from_dense(&half, plan.m, plan.k, plan.tile.br, plan.tile.bc, fmt);
        assert!(plan.bsr_macs(&b_half) < plan.bsr_macs(&b_full));
        assert!(
            plan.bsr_acc_outputs(&b_half)
                <= plan.bsr_acc_outputs(&b_full) / 2 + plan.n_spatial * plan.m
        );
    }
}
