//! Q15 integer GEMM: the device's fixed-point arithmetic on the host.
//!
//! The simulated MSP430 accelerator (`iprune-hawaii`) computes every layer
//! as i16×i16 products accumulated wide, bias preloaded at accumulator
//! scale, then an arithmetic-shift requantization back to i16 (and a ReLU
//! clamp for hidden layers). This module exposes exactly that arithmetic as
//! a host GEMM so evaluation can run in device numerics (`IPRUNE_EVAL=q15`)
//! and report f32-vs-Q15 accuracy deltas.
//!
//! Both operands are **k-contiguous** (dot form): `a` is `[m][k]` (weight
//! rows), `b` is `[n][k]` (activation columns, e.g. a transposed im2col
//! patch matrix), and `c[i][j] = requantize((bias[i] << bias_shift) +
//! a_row(i) · b_row(j))`. This one shape covers both convolution
//! (`m = c_out`, `n = output positions`) and fully-connected layers
//! (`n = 1`).
//!
//! # Exactness contract
//!
//! The scalar body ([`q15_gemm_scalar`]) widens every product to i64 before
//! accumulating — the executable spec, matching the device engine exactly.
//! The AVX2 body (`_mm256_madd_epi16`) is **bitwise equal to the spec**
//! whenever one operand contains no `i16::MIN`: pairwise i32 sums then
//! cannot wrap, and integer addition is associative. Weights quantized via
//! [`crate::quant::QFormat::for_max_abs`] (headroom 0.999) never produce
//! `i16::MIN`, so the precondition holds structurally on the evaluation
//! path; the dispatched entry debug-asserts it.
//!
//! The int8 deployment tier ([`q8_gemm`]) shares the operand layout but
//! accumulates i8×i8 products in a *wrapping* i32 with the bias preloaded
//! at accumulator scale; its SIMD body is bitwise-equal to the scalar spec
//! for **all** inputs (see its docs).

use crate::quant::{requantize, requantize8};
use crate::simd::{self, q15_dot_i64, q8_dot_i32, SimdLevel};

/// Q15 GEMM dispatched on the process SIMD level.
///
/// `c[i][j] = requantize((bias[i] << bias_shift) + Σ_p a[i*k+p] * b[j*k+p],
/// in_frac, w_frac, out_frac)`, clamped at zero when `relu` is set.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`. Debug
/// builds additionally assert the no-`i16::MIN` precondition on `a` (see
/// module docs).
#[allow(clippy::too_many_arguments)]
pub fn q15_gemm(
    a: &[i16],
    b: &[i16],
    bias: &[i16],
    bias_shift: u32,
    c: &mut [i16],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
) {
    debug_assert!(
        !a.contains(&i16::MIN),
        "q15_gemm lhs contains i16::MIN; SIMD madd exactness not guaranteed"
    );
    let use_avx2 = simd::simd_level() == SimdLevel::Avx2;
    q15_gemm_body(a, b, bias, bias_shift, c, m, k, n, in_frac, w_frac, out_frac, relu, use_avx2);
}

/// Scalar-spec Q15 GEMM: per-product i64 accumulation, identical to the
/// device engine for any input, regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn q15_gemm_scalar(
    a: &[i16],
    b: &[i16],
    bias: &[i16],
    bias_shift: u32,
    c: &mut [i16],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
) {
    q15_gemm_body(a, b, bias, bias_shift, c, m, k, n, in_frac, w_frac, out_frac, relu, false);
}

#[allow(clippy::too_many_arguments)]
fn q15_gemm_body(
    a: &[i16],
    b: &[i16],
    bias: &[i16],
    bias_shift: u32,
    c: &mut [i16],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
    use_avx2: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(bias.len(), m, "bias length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let preload = (bias[i] as i64) << bias_shift;
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let acc = preload + q15_dot_dispatch(a_row, b_row, use_avx2);
            let mut v = requantize(acc, in_frac, w_frac, out_frac);
            if relu && v < 0 {
                v = 0;
            }
            c[i * n + j] = v;
        }
    }
}

/// Q8 GEMM dispatched on the process SIMD level — the int8 deployment
/// tier. Same dot-form operand layout as [`q15_gemm`] (`a` is `[m][k]` i8
/// weight rows, `b` is `[n][k]` i8 activation columns), but the bias is
/// preloaded **directly at accumulator scale** as i32 (`in_frac + w_frac`
/// fractional bits — the standard int8 deployment layout, no separate bias
/// shift):
///
/// `c[i][j] = requantize8(bias[i] + Σ_p a[i*k+p] * b[j*k+p], in_frac,
/// w_frac, out_frac)`, clamped at zero when `relu` is set.
///
/// # Exactness contract
///
/// The scalar body ([`q8_gemm_scalar`]) accumulates i8×i8 products in a
/// **wrapping** i32 — the executable spec. The AVX2 body (sign-extend +
/// `_mm256_madd_epi16`, wrapping i32 lanes) is **bitwise equal to the spec
/// for all inputs**: pair sums are exact and wrapping addition
/// reassociates freely, so unlike Q15 there is no operand precondition.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn q8_gemm(
    a: &[i8],
    b: &[i8],
    bias: &[i32],
    c: &mut [i8],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
) {
    let use_avx2 = simd::simd_level() == SimdLevel::Avx2;
    q8_gemm_body(a, b, bias, c, m, k, n, in_frac, w_frac, out_frac, relu, use_avx2);
}

/// Scalar-spec Q8 GEMM: wrapping-i32 accumulation, identical at any SIMD
/// dispatch level.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn q8_gemm_scalar(
    a: &[i8],
    b: &[i8],
    bias: &[i32],
    c: &mut [i8],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
) {
    q8_gemm_body(a, b, bias, c, m, k, n, in_frac, w_frac, out_frac, relu, false);
}

#[allow(clippy::too_many_arguments)]
fn q8_gemm_body(
    a: &[i8],
    b: &[i8],
    bias: &[i32],
    c: &mut [i8],
    m: usize,
    k: usize,
    n: usize,
    in_frac: u8,
    w_frac: u8,
    out_frac: u8,
    relu: bool,
    use_avx2: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(bias.len(), m, "bias length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let preload = bias[i];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let acc = preload.wrapping_add(q8_dot_dispatch(a_row, b_row, use_avx2));
            let mut v = requantize8(acc, in_frac, w_frac, out_frac);
            if relu && v < 0 {
                v = 0;
            }
            c[i * n + j] = v;
        }
    }
}

#[inline]
fn q8_dot_dispatch(a_row: &[i8], b_row: &[i8], use_avx2: bool) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx2 {
            // SAFETY: the dispatch level only reports Avx2 on CPUs with
            // avx2; both rows hold `k` elements (asserted by the entry).
            return unsafe { simd::avx2::q8_dot(a_row.as_ptr(), b_row.as_ptr(), a_row.len()) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    q8_dot_i32(a_row, b_row)
}

#[inline]
fn q15_dot_dispatch(a_row: &[i16], b_row: &[i16], use_avx2: bool) -> i64 {
    #[cfg(target_arch = "x86_64")]
    {
        if use_avx2 {
            // SAFETY: the dispatch level only reports Avx2 on CPUs with
            // avx2; both rows hold `k` elements (asserted by the entry).
            return unsafe { simd::avx2::q15_dot(a_row.as_ptr(), b_row.as_ptr(), a_row.len()) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    q15_dot_i64(a_row, b_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QFormat;

    fn xorshift(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    /// Weight-like operand: i16 values that exclude `i16::MIN`, as
    /// `QFormat::for_max_abs` quantization guarantees.
    fn weights(len: usize, next: &mut impl FnMut() -> u64) -> Vec<i16> {
        (0..len).map(|_| (next() as i16).max(-i16::MAX)).collect()
    }

    #[test]
    fn matches_hand_computed_requant() {
        // one 2x3 · 3x1: Q1.14 weights, Q0.15 inputs, Q0.15 out
        let a = [16384i16, -8192, 4096, 0, 16384, -16384]; // 1.0, -0.5, 0.25 / 0, 1.0, -1.0 in Q14
        let b = [16384i16, 8192, -32767]; // b may hold any i16
        let bias = [0i16, 100];
        let mut c = [0i16; 2];
        q15_gemm_scalar(&a, &b, &bias, 14, &mut c, 2, 3, 1, 15, 14, 15, false);
        let acc0 = 16384i64 * 16384 + (-8192i64) * 8192 + 4096i64 * (-32767);
        let acc1 = (100i64 << 14) + 16384i64 * 8192 + (-16384i64) * (-32767);
        assert_eq!(c[0], requantize(acc0, 15, 14, 15));
        assert_eq!(c[1], requantize(acc1, 15, 14, 15));
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let a = [-16384i16];
        let b = [16384i16];
        let mut c = [0i16; 1];
        q15_gemm_scalar(&a, &b, &[0], 0, &mut c, 1, 1, 1, 15, 14, 15, true);
        assert_eq!(c[0], 0);
        q15_gemm_scalar(&a, &b, &[0], 0, &mut c, 1, 1, 1, 15, 14, 15, false);
        assert!(c[0] < 0);
    }

    #[test]
    fn output_saturates_at_i16_bounds() {
        // huge positive accumulator saturates at i16::MAX
        let a = vec![32767i16; 64];
        let b = vec![32767i16; 64];
        let mut c = [0i16; 1];
        q15_gemm_scalar(&a, &b, &[0], 0, &mut c, 1, 64, 1, 15, 15, 15, false);
        assert_eq!(c[0], i16::MAX);
        let a = vec![-32767i16; 64];
        q15_gemm_scalar(&a, &b, &[0], 0, &mut c, 1, 64, 1, 15, 15, 15, false);
        assert_eq!(c[0], i16::MIN);
    }

    #[test]
    fn avx2_body_is_exactly_scalar_spec() {
        if !simd::avx2_supported() {
            return;
        }
        let mut next = xorshift(0xfeed_beef);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 17, 5), (8, 64, 9), (5, 130, 2)] {
            let a = weights(m * k, &mut next);
            let b: Vec<i16> = (0..n * k).map(|_| next() as i16).collect();
            let bias: Vec<i16> = (0..m).map(|_| next() as i16).collect();
            let mut c_ref = vec![0i16; m * n];
            let mut c_simd = vec![0i16; m * n];
            q15_gemm_body(&a, &b, &bias, 7, &mut c_ref, m, k, n, 13, 14, 12, true, false);
            q15_gemm_body(&a, &b, &bias, 7, &mut c_simd, m, k, n, 13, 14, 12, true, true);
            assert_eq!(c_ref, c_simd, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn q8_matches_hand_computed_requant() {
        // 2x3 · 3x1: Q1.6 weights, Q0.7 inputs, Q0.7 out; bias at Q13 acc scale
        let a = [64i8, -32, 16, 0, 64, -64]; // 1.0, -0.5, 0.25 / 0, 1.0, -1.0 in Q6
        let b = [64i8, 32, -127];
        let bias = [0i32, 1 << 12]; // 0.5 at Q13
        let mut c = [0i8; 2];
        q8_gemm_scalar(&a, &b, &bias, &mut c, 2, 3, 1, 7, 6, 7, false);
        let acc0 = 64i32 * 64 + (-32i32) * 32 + 16i32 * (-127);
        let acc1 = (1 << 12) + 64i32 * 32 + (-64i32) * (-127);
        assert_eq!(c[0], requantize8(acc0, 7, 6, 7));
        assert_eq!(c[1], requantize8(acc1, 7, 6, 7));
    }

    #[test]
    fn q8_relu_and_saturation() {
        let a = [-64i8];
        let b = [127i8];
        let mut c = [0i8; 1];
        q8_gemm_scalar(&a, &b, &[0], &mut c, 1, 1, 1, 7, 6, 7, true);
        assert_eq!(c[0], 0);
        q8_gemm_scalar(&a, &b, &[0], &mut c, 1, 1, 1, 7, 6, 7, false);
        assert!(c[0] < 0);
        // huge accumulator saturates at the i8 bounds
        let a = vec![127i8; 64];
        let b = vec![127i8; 64];
        let mut c = [0i8; 1];
        q8_gemm_scalar(&a, &b, &[0], &mut c, 1, 64, 1, 7, 7, 7, false);
        assert_eq!(c[0], i8::MAX);
        let a = vec![-127i8; 64];
        q8_gemm_scalar(&a, &b, &[0], &mut c, 1, 64, 1, 7, 7, 7, false);
        assert_eq!(c[0], i8::MIN);
    }

    #[test]
    fn q8_avx2_body_is_exactly_scalar_spec() {
        if !simd::avx2_supported() {
            return;
        }
        let mut next = xorshift(0xdead_cafe);
        for &(m, k, n) in
            &[(1usize, 1usize, 1usize), (3, 17, 5), (8, 64, 9), (5, 130, 2), (4, 577, 3)]
        {
            // full i8 range on both operands — no precondition for Q8
            let a: Vec<i8> = (0..m * k).map(|_| next() as i8).collect();
            let b: Vec<i8> = (0..n * k).map(|_| next() as i8).collect();
            let bias: Vec<i32> = (0..m).map(|_| (next() as i32) % (1 << 14)).collect();
            let mut c_ref = vec![0i8; m * n];
            let mut c_simd = vec![0i8; m * n];
            q8_gemm_body(&a, &b, &bias, &mut c_ref, m, k, n, 7, 6, 5, true, false);
            q8_gemm_body(&a, &b, &bias, &mut c_simd, m, k, n, 7, 6, 5, true, true);
            assert_eq!(c_ref, c_simd, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn quantized_weights_never_hit_i16_min() {
        // the structural precondition for madd exactness
        let fmt = QFormat::for_max_abs(3.7);
        for i in -2000..=2000 {
            let x = i as f32 * 3.7 / 2000.0;
            assert_ne!(fmt.quantize(x), i16::MIN, "x = {x}");
        }
    }
}
