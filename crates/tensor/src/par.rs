//! Host-side scoped-thread worker pool.
//!
//! The iPrune server-side work (training, sensitivity probes, annealing
//! sweeps) is embarrassingly parallel at several granularities: samples
//! within a batch, independent per-layer probes, whole app pipelines. This
//! module provides the one parallel primitive they all share: fan a fixed
//! index range out over `std::thread::scope` workers and collect per-index
//! results **in index order**, so every reduction downstream is a
//! fixed-order (and therefore bit-deterministic) fold, regardless of the
//! thread count or scheduling.
//!
//! Design rules:
//!
//! - **Host only.** The device simulator (`iprune-device`, `iprune-hawaii`)
//!   never uses this pool; intermittent execution stays single-threaded and
//!   cycle-deterministic.
//! - **No nesting.** A parallel region entered from inside a worker runs
//!   serially (same closures, same order), so parallelism applies at the
//!   outermost profitable level and thread counts stay bounded.
//! - **Determinism.** Callers receive per-index results in index order and
//!   must reduce in that order. Under that contract, `IPRUNE_THREADS=1` and
//!   `IPRUNE_THREADS=64` produce bit-identical numbers.
//!
//! The thread count comes from [`set_threads`] when set, else the
//! `IPRUNE_THREADS` environment variable, else
//! `std::thread::available_parallelism()`.

use iprune_obs::metrics::{self, Counter, Histogram};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Programmatic thread-count override (0 = not set).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Sets the worker-thread count for subsequent parallel regions
/// (process-wide). `0` clears the override, falling back to
/// `IPRUNE_THREADS` / available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The configured worker-thread count: the [`set_threads`] override if set,
/// else `IPRUNE_THREADS`, else the machine's available parallelism.
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("IPRUNE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Whether the calling thread is inside a pool worker (nested parallel
/// regions run serially).
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Whether a parallel region opened here would actually fan out.
pub fn active() -> bool {
    num_threads() > 1 && !in_worker()
}

/// Worker count a region of `n` independent items would use.
pub fn workers_for(n: usize) -> usize {
    if in_worker() {
        1
    } else {
        num_threads().min(n).max(1)
    }
}

/// Records one parallel region in the host metrics registry: how many
/// fanned out vs ran serially, and the item/worker fan-out distributions
/// (pool-utilization signal for `metrics::snapshot()` reports).
fn record_region(items: usize, workers: usize) {
    static PARALLEL: OnceLock<Arc<Counter>> = OnceLock::new();
    static SERIAL: OnceLock<Arc<Counter>> = OnceLock::new();
    static ITEMS: OnceLock<Arc<Histogram>> = OnceLock::new();
    static WORKERS: OnceLock<Arc<Histogram>> = OnceLock::new();
    if workers > 1 {
        PARALLEL.get_or_init(|| metrics::counter("par.regions_parallel")).inc();
        ITEMS.get_or_init(|| metrics::histogram("par.region_items")).record(items as u64);
        WORKERS.get_or_init(|| metrics::histogram("par.region_workers")).record(workers as u64);
    } else {
        SERIAL.get_or_init(|| metrics::counter("par.regions_serial")).inc();
    }
}

struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> Self {
        IN_WORKER.with(|w| w.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|w| w.set(false));
    }
}

/// Maps `f` over `0..n`, returning the results in index order.
///
/// Indices are split into contiguous per-worker chunks; the calling thread
/// works on the first chunk while spawned scoped workers handle the rest.
/// With one worker (or inside a worker) this is exactly `(0..n).map(f)`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let w = workers_for(n);
    record_region(n, w);
    if w <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(w);
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|s| {
        let f = &f;
        let mut groups = results.chunks_mut(chunk).enumerate();
        let first = groups.next();
        for (wi, group) in groups {
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                for (j, slot) in group.iter_mut().enumerate() {
                    *slot = Some(f(wi * chunk + j));
                }
            });
        }
        if let Some((_, group)) = first {
            let _guard = WorkerGuard::enter();
            for (j, slot) in group.iter_mut().enumerate() {
                *slot = Some(f(j));
            }
        }
    });
    results.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Splits `data` into `data.len() / chunk` equal chunks, maps
/// `f(chunk_index, chunk)` over them in parallel, and returns the per-chunk
/// results in chunk order.
///
/// This is the mutable-output twin of [`par_map`]: each chunk is owned by
/// exactly one worker (e.g. one sample's slice of a batched tensor), so
/// workers write disjoint regions without synchronization.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `data.len()`.
pub fn par_chunks_map<T, R, F>(data: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk must be positive");
    assert_eq!(data.len() % chunk, 0, "chunk must divide data length");
    let n = data.len() / chunk;
    let w = workers_for(n);
    record_region(n, w);
    if w <= 1 {
        return data.chunks_mut(chunk).enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let per = n.div_ceil(w);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|s| {
        let f = &f;
        let data_groups = data.chunks_mut(per * chunk);
        let res_groups = results.chunks_mut(per);
        let mut groups = data_groups.zip(res_groups).enumerate();
        let first = groups.next();
        for (wi, (dgroup, rgroup)) in groups {
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                for (j, (d, slot)) in dgroup.chunks_mut(chunk).zip(rgroup.iter_mut()).enumerate() {
                    *slot = Some(f(wi * per + j, d));
                }
            });
        }
        if let Some((_, (dgroup, rgroup))) = first {
            let _guard = WorkerGuard::enter();
            for (j, (d, slot)) in dgroup.chunks_mut(chunk).zip(rgroup.iter_mut()).enumerate() {
                *slot = Some(f(j, d));
            }
        }
    });
    results.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Splits `data` into contiguous blocks of `block` elements (the final
/// block may be shorter) and runs `f(block_index, block)` on each, one
/// worker per block. Unlike [`par_chunks_map`] the block size need not
/// divide the data length, and no per-block results are collected — the
/// caller sizes `block` so the number of blocks is at most the worker
/// count (e.g. `rows_per_worker * row_stride` for a row-major matrix).
///
/// # Panics
///
/// Panics if `block` is zero and `data` is non-empty.
pub fn par_blocks<T, F>(data: &mut [T], block: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(block > 0, "block must be positive");
    let nblocks = data.len().div_ceil(block);
    record_region(nblocks, workers_for(nblocks));
    if nblocks == 1 || workers_for(nblocks) <= 1 {
        for (i, ch) in data.chunks_mut(block).enumerate() {
            f(i, ch);
        }
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        let mut it = data.chunks_mut(block).enumerate();
        let first = it.next();
        for (i, ch) in it {
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                f(i, ch);
            });
        }
        if let Some((i, ch)) = first {
            let _guard = WorkerGuard::enter();
            f(i, ch);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_returns_in_index_order() {
        set_threads(4);
        let v = par_map(23, |i| i * i);
        set_threads(0);
        assert_eq!(v, (0..23).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E37) >> 3).collect();
        for t in [1, 2, 3, 8, 64] {
            set_threads(t);
            let par = par_map(37, |i| (i as u64).wrapping_mul(0x9E37) >> 3);
            assert_eq!(par, serial, "threads={t}");
        }
        set_threads(0);
    }

    #[test]
    fn par_chunks_map_writes_disjoint_chunks() {
        set_threads(3);
        let mut data = vec![0u32; 40];
        let sums = par_chunks_map(&mut data, 8, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 100 + j) as u32;
            }
            c.iter().sum::<u32>()
        });
        set_threads(0);
        for (i, c) in data.chunks(8).enumerate() {
            for (j, &v) in c.iter().enumerate() {
                assert_eq!(v, (i * 100 + j) as u32);
            }
        }
        assert_eq!(sums.len(), 5);
        assert_eq!(sums[2], (0..8).map(|j| 200 + j as u32).sum::<u32>());
    }

    #[test]
    fn nested_regions_run_serially() {
        set_threads(4);
        let out = par_map(4, |i| {
            assert!(in_worker());
            assert!(!active(), "nested region must not fan out");
            // nested call still works, just serial
            par_map(3, move |j| i * 10 + j)
        });
        set_threads(0);
        assert_eq!(out[1], vec![10, 11, 12]);
        assert_eq!(out[3], vec![30, 31, 32]);
    }

    #[test]
    fn workers_for_respects_limits() {
        set_threads(8);
        assert_eq!(workers_for(3), 3);
        assert_eq!(workers_for(100), 8);
        assert_eq!(workers_for(0), 1);
        set_threads(1);
        assert_eq!(workers_for(100), 1);
        set_threads(0);
    }

    #[test]
    #[should_panic(expected = "chunk must divide")]
    fn par_chunks_map_rejects_ragged() {
        let mut d = vec![0u8; 10];
        par_chunks_map(&mut d, 3, |_, _| ());
    }
}
