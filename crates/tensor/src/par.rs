//! Host-side persistent worker pool.
//!
//! The iPrune server-side work (training, sensitivity probes, annealing
//! sweeps, fault campaigns) is embarrassingly parallel at several
//! granularities: samples within a batch, independent per-layer probes,
//! whole app pipelines, forked fault runs. This module provides the one
//! parallel primitive they all share: fan a fixed index range out over pool
//! workers and collect per-index results **in index order**, so every
//! reduction downstream is a fixed-order (and therefore bit-deterministic)
//! fold, regardless of the thread count or scheduling.
//!
//! Design rules:
//!
//! - **Host only.** The device simulator (`iprune-device`, `iprune-hawaii`)
//!   never uses this pool; intermittent execution stays single-threaded and
//!   cycle-deterministic. (Fault campaigns parallelize across *independent*
//!   simulators, each one still serial inside.)
//! - **No nesting.** A parallel region entered from inside a worker runs
//!   serially (same closures, same order), so parallelism applies at the
//!   outermost profitable level and thread counts stay bounded.
//! - **No oversubscription.** The effective worker count of a region is
//!   capped at [`host_cores`]: requesting `IPRUNE_THREADS=8` on a 1-core
//!   host runs serially instead of time-slicing eight workers over one core
//!   (which benchmarked *slower* than serial due to context-switch and
//!   spawn overhead).
//! - **Determinism.** Callers receive per-index results in index order and
//!   must reduce in that order. Under that contract, `IPRUNE_THREADS=1` and
//!   `IPRUNE_THREADS=64` produce bit-identical numbers.
//!
//! Worker threads are spawned once and persist for the process lifetime;
//! each region enqueues its chunks and the calling thread works on the
//! first chunk while pool workers drain the rest. This amortizes thread
//! spawn cost (~100 µs each) across the many short regions the prune loop
//! opens per epoch.
//!
//! The requested thread count comes from [`set_threads`] when set, else the
//! `IPRUNE_THREADS` environment variable, else
//! `std::thread::available_parallelism()`.

use iprune_obs::metrics::{self, Counter, Histogram};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Programmatic thread-count override (0 = not set).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Programmatic host-core override (0 = not set), for tests that need to
/// exercise real fan-out on small CI machines.
static CORE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Sets the worker-thread count for subsequent parallel regions
/// (process-wide). `0` clears the override, falling back to
/// `IPRUNE_THREADS` / available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The configured (requested) worker-thread count: the [`set_threads`]
/// override if set, else `IPRUNE_THREADS`, else the machine's available
/// parallelism. The *effective* count of a region is additionally capped at
/// [`host_cores`] — see [`workers_for`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("IPRUNE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    host_cores()
}

/// Overrides the detected physical core count (process-wide, `0` clears).
/// Tests use this to exercise real fan-out on single-core CI machines and
/// to pin benchmark configurations.
pub fn set_host_cores(n: usize) {
    CORE_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Physical cores available to this process: the [`set_host_cores`]
/// override if set, else `IPRUNE_HOST_CORES`, else
/// `std::thread::available_parallelism()`, else a `/proc/cpuinfo` count,
/// else 1. This is the oversubscription cap for every parallel region.
pub fn host_cores() -> usize {
    let o = CORE_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("IPRUNE_HOST_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    if let Ok(body) = std::fs::read_to_string("/proc/cpuinfo") {
        let n = body.lines().filter(|l| l.starts_with("processor")).count();
        if n > 0 {
            return n;
        }
    }
    1
}

/// Whether the calling thread is inside a pool worker (nested parallel
/// regions run serially). Also true inside the closures of a region that
/// ran serially because of the core cap, so callers observe the same
/// environment either way.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Whether a parallel region opened here would actually fan out.
pub fn active() -> bool {
    num_threads().min(host_cores()) > 1 && !in_worker()
}

/// Effective worker count a region of `n` independent items would use:
/// the requested count capped at the physical core count and at `n`.
pub fn workers_for(n: usize) -> usize {
    if in_worker() {
        1
    } else {
        num_threads().min(host_cores()).min(n).max(1)
    }
}

/// Records one parallel region in the host metrics registry: how many
/// fanned out vs ran serially, and the item/worker fan-out distributions
/// (pool-utilization signal for `metrics::snapshot()` reports).
fn record_region(items: usize, workers: usize) {
    static PARALLEL: OnceLock<Arc<Counter>> = OnceLock::new();
    static SERIAL: OnceLock<Arc<Counter>> = OnceLock::new();
    static ITEMS: OnceLock<Arc<Histogram>> = OnceLock::new();
    static WORKERS: OnceLock<Arc<Histogram>> = OnceLock::new();
    if workers > 1 {
        PARALLEL.get_or_init(|| metrics::counter("par.regions_parallel")).inc();
        ITEMS.get_or_init(|| metrics::histogram("par.region_items")).record(items as u64);
        WORKERS.get_or_init(|| metrics::histogram("par.region_workers")).record(workers as u64);
    } else {
        SERIAL.get_or_init(|| metrics::counter("par.regions_serial")).inc();
    }
}

/// Marks the current thread as executing region work. Saves and restores
/// the previous flag so regions nested through the serial path unwind
/// correctly.
struct WorkerGuard {
    prev: bool,
}

impl WorkerGuard {
    fn enter() -> Self {
        let prev = IN_WORKER.with(|w| w.replace(true));
        WorkerGuard { prev }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|w| w.set(prev));
    }
}

/// A queued unit of region work, lifetime-erased (see `region_execute` for
/// why that is sound).
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    threads: usize,
}

/// The process-wide persistent worker pool.
struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl Pool {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        // a panicking job never holds this lock, so poison is spurious
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Grows the pool to at least `n` worker threads.
    fn ensure_workers(&'static self, n: usize) {
        let mut st = self.lock();
        while st.threads < n {
            st.threads += 1;
            let name = format!("iprune-par-{}", st.threads);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    fn worker_loop(&'static self) {
        IN_WORKER.with(|w| w.set(true));
        let mut st = self.lock();
        loop {
            if let Some(job) = st.queue.pop_front() {
                drop(st);
                job(); // panics are caught inside the wrapper
                st = self.lock();
            } else {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), threads: 0 }),
        cv: Condvar::new(),
    })
}

/// Completion latch of one region: outstanding task count plus the first
/// captured panic payload.
struct RegionSync {
    m: Mutex<(usize, Option<Box<dyn std::any::Any + Send>>)>,
    cv: Condvar,
}

/// Runs `tasks` on pool workers while the calling thread runs `leader`
/// (the region's first chunk) inline, then blocks until every task
/// finished. Panics from any task (or the leader) are re-raised here, after
/// the barrier, so no borrowed data outlives its frame.
///
/// Soundness of the lifetime erasure: the queued closures borrow stack data
/// of this call (`&f`, result slices). `region_execute` does not return —
/// and does not unwind, the leader chunk runs under `catch_unwind` — until
/// the latch counts every queued task as finished, so the borrows are dead
/// before the frame is.
fn region_execute<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>, leader: impl FnOnce()) {
    let sync = Arc::new(RegionSync { m: Mutex::new((tasks.len(), None)), cv: Condvar::new() });
    let pool = pool();
    pool.ensure_workers(tasks.len());
    {
        let mut st = pool.lock();
        for task in tasks {
            let sync = Arc::clone(&sync);
            let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                let mut g = sync.m.lock().unwrap_or_else(|e| e.into_inner());
                g.0 -= 1;
                if let Err(p) = result {
                    g.1.get_or_insert(p);
                }
                if g.0 == 0 {
                    sync.cv.notify_all();
                }
            });
            // lifetime erasure — sound per the barrier argument above
            let wrapped: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(wrapped) };
            st.queue.push_back(wrapped);
        }
        pool.cv.notify_all();
    }
    let leader_result = {
        let _guard = WorkerGuard::enter();
        catch_unwind(AssertUnwindSafe(leader))
    };
    let mut g = sync.m.lock().unwrap_or_else(|e| e.into_inner());
    while g.0 > 0 {
        g = sync.cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    let worker_panic = g.1.take();
    drop(g);
    if let Err(p) = leader_result {
        resume_unwind(p);
    }
    if let Some(p) = worker_panic {
        resume_unwind(p);
    }
}

/// Maps `f` over `0..n`, returning the results in index order.
///
/// Indices are split into contiguous per-worker chunks; the calling thread
/// works on the first chunk while pool workers handle the rest. With one
/// effective worker (or inside a worker) this is exactly `(0..n).map(f)`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let w = workers_for(n);
    record_region(n, w);
    if w <= 1 {
        let _guard = WorkerGuard::enter();
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(w);
    let mut results: Vec<Option<T>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let f = &f;
        let mut groups = results.chunks_mut(chunk).enumerate();
        let first = groups.next();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = groups
            .map(|(wi, group)| -> Box<dyn FnOnce() + Send + '_> {
                Box::new(move || {
                    for (j, slot) in group.iter_mut().enumerate() {
                        *slot = Some(f(wi * chunk + j));
                    }
                })
            })
            .collect();
        region_execute(tasks, move || {
            if let Some((_, group)) = first {
                for (j, slot) in group.iter_mut().enumerate() {
                    *slot = Some(f(j));
                }
            }
        });
    }
    results.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Splits `data` into `data.len() / chunk` equal chunks, maps
/// `f(chunk_index, chunk)` over them in parallel, and returns the per-chunk
/// results in chunk order.
///
/// This is the mutable-output twin of [`par_map`]: each chunk is owned by
/// exactly one worker (e.g. one sample's slice of a batched tensor), so
/// workers write disjoint regions without synchronization.
///
/// # Panics
///
/// Panics if `chunk` is zero or does not divide `data.len()`.
pub fn par_chunks_map<T, R, F>(data: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk must be positive");
    assert_eq!(data.len() % chunk, 0, "chunk must divide data length");
    let n = data.len() / chunk;
    let w = workers_for(n);
    record_region(n, w);
    if w <= 1 {
        let _guard = WorkerGuard::enter();
        return data.chunks_mut(chunk).enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let per = n.div_ceil(w);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    {
        let f = &f;
        let data_groups = data.chunks_mut(per * chunk);
        let res_groups = results.chunks_mut(per);
        let mut groups = data_groups.zip(res_groups).enumerate();
        let first = groups.next();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = groups
            .map(|(wi, (dgroup, rgroup))| -> Box<dyn FnOnce() + Send + '_> {
                Box::new(move || {
                    for (j, (d, slot)) in
                        dgroup.chunks_mut(chunk).zip(rgroup.iter_mut()).enumerate()
                    {
                        *slot = Some(f(wi * per + j, d));
                    }
                })
            })
            .collect();
        region_execute(tasks, move || {
            if let Some((_, (dgroup, rgroup))) = first {
                for (j, (d, slot)) in dgroup.chunks_mut(chunk).zip(rgroup.iter_mut()).enumerate() {
                    *slot = Some(f(j, d));
                }
            }
        });
    }
    results.into_iter().map(|o| o.expect("worker filled every slot")).collect()
}

/// Splits `data` into contiguous blocks of `block` elements (the final
/// block may be shorter) and runs `f(block_index, block)` on each, one
/// worker per block. Unlike [`par_chunks_map`] the block size need not
/// divide the data length, and no per-block results are collected — the
/// caller sizes `block` so the number of blocks is at most the worker
/// count (e.g. `rows_per_worker * row_stride` for a row-major matrix).
///
/// # Panics
///
/// Panics if `block` is zero and `data` is non-empty.
pub fn par_blocks<T, F>(data: &mut [T], block: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(block > 0, "block must be positive");
    let nblocks = data.len().div_ceil(block);
    record_region(nblocks, workers_for(nblocks));
    if nblocks == 1 || workers_for(nblocks) <= 1 {
        let _guard = WorkerGuard::enter();
        for (i, ch) in data.chunks_mut(block).enumerate() {
            f(i, ch);
        }
        return;
    }
    {
        let f = &f;
        let mut it = data.chunks_mut(block).enumerate();
        let first = it.next();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = it
            .map(|(i, ch)| -> Box<dyn FnOnce() + Send + '_> {
                Box::new(move || {
                    f(i, ch);
                })
            })
            .collect();
        region_execute(tasks, move || {
            if let Some((i, ch)) = first {
                f(i, ch);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The overrides are process-wide; tests that touch them serialize here
    /// so exact-count assertions don't race each other.
    fn overrides_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn par_map_returns_in_index_order() {
        let _l = overrides_lock();
        set_host_cores(4);
        set_threads(4);
        let v = par_map(23, |i| i * i);
        set_threads(0);
        set_host_cores(0);
        assert_eq!(v, (0..23).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_for_any_thread_count() {
        let _l = overrides_lock();
        set_host_cores(8);
        let serial: Vec<u64> = (0..37).map(|i| (i as u64).wrapping_mul(0x9E37) >> 3).collect();
        for t in [1, 2, 3, 8, 64] {
            set_threads(t);
            let par = par_map(37, |i| (i as u64).wrapping_mul(0x9E37) >> 3);
            assert_eq!(par, serial, "threads={t}");
        }
        set_threads(0);
        set_host_cores(0);
    }

    #[test]
    fn par_chunks_map_writes_disjoint_chunks() {
        let _l = overrides_lock();
        set_host_cores(3);
        set_threads(3);
        let mut data = vec![0u32; 40];
        let sums = par_chunks_map(&mut data, 8, |i, c| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 100 + j) as u32;
            }
            c.iter().sum::<u32>()
        });
        set_threads(0);
        set_host_cores(0);
        for (i, c) in data.chunks(8).enumerate() {
            for (j, &v) in c.iter().enumerate() {
                assert_eq!(v, (i * 100 + j) as u32);
            }
        }
        assert_eq!(sums.len(), 5);
        assert_eq!(sums[2], (0..8).map(|j| 200 + j as u32).sum::<u32>());
    }

    #[test]
    fn nested_regions_run_serially() {
        let _l = overrides_lock();
        set_host_cores(4);
        set_threads(4);
        let out = par_map(4, |i| {
            assert!(in_worker());
            assert!(!active(), "nested region must not fan out");
            // nested call still works, just serial
            par_map(3, move |j| i * 10 + j)
        });
        set_threads(0);
        set_host_cores(0);
        assert_eq!(out[1], vec![10, 11, 12]);
        assert_eq!(out[3], vec![30, 31, 32]);
    }

    #[test]
    fn workers_for_respects_limits() {
        let _l = overrides_lock();
        set_host_cores(8);
        set_threads(8);
        assert_eq!(workers_for(3), 3);
        assert_eq!(workers_for(100), 8);
        assert_eq!(workers_for(0), 1);
        set_threads(1);
        assert_eq!(workers_for(100), 1);
        // oversubscription: requested threads are capped at physical cores
        set_threads(8);
        set_host_cores(2);
        assert_eq!(workers_for(100), 2);
        set_host_cores(1);
        assert_eq!(workers_for(100), 1);
        assert!(!active());
        set_threads(0);
        set_host_cores(0);
    }

    #[test]
    fn capped_serial_regions_still_run_inside_a_worker_context() {
        let _l = overrides_lock();
        set_threads(8);
        set_host_cores(1); // 1-core host: the region must not fan out
        let v = par_map(5, |i| {
            assert!(in_worker(), "serial regions still mark worker context");
            i + 1
        });
        set_threads(0);
        set_host_cores(0);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_workers_persist_across_regions() {
        let _l = overrides_lock();
        set_host_cores(4);
        set_threads(4);
        // many small regions re-use the same pool threads; results stay
        // index-ordered every time
        for round in 0..50usize {
            let v = par_map(16, |i| i * 3 + round);
            assert_eq!(v, (0..16).map(|i| i * 3 + round).collect::<Vec<_>>(), "round {round}");
        }
        set_threads(0);
        set_host_cores(0);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let _l = overrides_lock();
        set_host_cores(4);
        set_threads(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            par_map(8, |i| {
                if i == 6 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        set_threads(0);
        set_host_cores(0);
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
    }

    #[test]
    #[should_panic(expected = "chunk must divide")]
    fn par_chunks_map_rejects_ragged() {
        let mut d = vec![0u8; 10];
        par_chunks_map(&mut d, 3, |_, _| ());
    }
}
