//! 16-bit fixed-point quantization (the paper's Q15-style deployment format).
//!
//! Model parameters are trained in 32-bit floating point and quantized to a
//! 16-bit fixed-point representation for deployment on the MSP430 device
//! (Section IV-A). We use per-tensor power-of-two scales: a [`QFormat`] with
//! `frac_bits = f` represents value `x` as `round(x * 2^f)` saturated to
//! `i16`. Power-of-two scales keep requantization a pure arithmetic shift,
//! exactly what the LEA-style accelerator performs.

use crate::Tensor;

/// A power-of-two fixed-point format: `f` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    frac_bits: u8,
}

impl QFormat {
    /// Maximum representable fractional bits for i16.
    pub const MAX_FRAC_BITS: u8 = 15;

    /// Creates a format with `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 15`.
    pub fn new(frac_bits: u8) -> Self {
        assert!(frac_bits <= Self::MAX_FRAC_BITS, "at most 15 fractional bits");
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> f32 {
        (1i32 << self.frac_bits) as f32
    }

    /// Chooses the largest format that represents `max_abs` without
    /// saturation, leaving one bit of headroom.
    ///
    /// For `max_abs < 1` this picks Q0.15-style `frac_bits = 15`; larger
    /// dynamic ranges get fewer fractional bits.
    pub fn for_max_abs(max_abs: f32) -> Self {
        let mut f = Self::MAX_FRAC_BITS;
        while f > 0 {
            let limit = 32767.0 / (1i64 << f) as f32;
            if max_abs <= limit * 0.999 {
                return Self::new(f);
            }
            f -= 1;
        }
        Self::new(0)
    }

    /// Quantizes a single value with round-to-nearest and saturation.
    #[inline]
    pub fn quantize(&self, x: f32) -> i16 {
        let v = (x * self.scale()).round();
        v.clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    /// Dequantizes a single value.
    #[inline]
    pub fn dequantize(&self, q: i16) -> f32 {
        q as f32 / self.scale()
    }
}

/// Requantizes a 32-bit accumulator holding a product/sum in
/// `(in_frac + w_frac)` fractional bits down to `out_frac` bits, with
/// round-to-nearest and i16 saturation.
///
/// This mirrors the arithmetic-shift requantization performed after each
/// accelerator accumulation on the device.
#[inline]
pub fn requantize(acc: i64, in_frac: u8, w_frac: u8, out_frac: u8) -> i16 {
    let shift = in_frac as i32 + w_frac as i32 - out_frac as i32;
    let v = if shift > 0 {
        let half = 1i64 << (shift - 1);
        (acc + half) >> shift
    } else {
        acc << (-shift)
    };
    v.clamp(i16::MIN as i64, i16::MAX as i64) as i16
}

/// A power-of-two 8-bit fixed-point format: `f` fractional bits in an i8.
///
/// The deploy-style int8 tier (`IPRUNE_EVAL=q8`) stores weights and
/// activations as i8 with per-tensor power-of-two scales — the same
/// shift-only requantization discipline as [`QFormat`], at half the
/// payload and a quarter of the multiplier width. Biases are *not* stored
/// in i8: the Q8 engine preloads them directly at accumulator scale as
/// i32 (see [`crate::qgemm::q8_gemm`]), the standard int8 deployment
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q8Format {
    frac_bits: u8,
}

impl Q8Format {
    /// Maximum representable fractional bits for i8.
    pub const MAX_FRAC_BITS: u8 = 7;

    /// Creates a format with `frac_bits` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits > 7`.
    pub fn new(frac_bits: u8) -> Self {
        assert!(frac_bits <= Self::MAX_FRAC_BITS, "at most 7 fractional bits");
        Self { frac_bits }
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> f32 {
        (1i32 << self.frac_bits) as f32
    }

    /// Chooses the largest format that represents `max_abs` without
    /// saturation, with the same 0.999 headroom rule as
    /// [`QFormat::for_max_abs`].
    pub fn for_max_abs(max_abs: f32) -> Self {
        let mut f = Self::MAX_FRAC_BITS;
        while f > 0 {
            let limit = 127.0 / (1i64 << f) as f32;
            if max_abs <= limit * 0.999 {
                return Self::new(f);
            }
            f -= 1;
        }
        Self::new(0)
    }

    /// Quantizes a single value with round-to-nearest and saturation.
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let v = (x * self.scale()).round();
        v.clamp(i8::MIN as f32, i8::MAX as f32) as i8
    }

    /// Dequantizes a single value.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 / self.scale()
    }
}

/// Requantizes a 32-bit Q8 accumulator holding a product/sum in
/// `(in_frac + w_frac)` fractional bits down to `out_frac` bits, with
/// round-to-nearest and i8 saturation — the 8-bit twin of [`requantize`]
/// (the rounding shift happens in i64, so no intermediate can overflow).
#[inline]
pub fn requantize8(acc: i32, in_frac: u8, w_frac: u8, out_frac: u8) -> i8 {
    let shift = in_frac as i32 + w_frac as i32 - out_frac as i32;
    let acc = acc as i64;
    let v = if shift > 0 {
        let half = 1i64 << (shift - 1);
        (acc + half) >> shift
    } else {
        acc << (-shift)
    };
    v.clamp(i8::MIN as i64, i8::MAX as i64) as i8
}

/// A quantized tensor: i16 values plus their [`QFormat`].
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    dims: Vec<usize>,
    data: Vec<i16>,
    format: QFormat,
}

impl QTensor {
    /// Quantizes a float tensor, picking the format from its max-abs value.
    pub fn quantize(t: &Tensor) -> Self {
        let format = QFormat::for_max_abs(t.max_abs());
        Self::quantize_with(t, format)
    }

    /// Quantizes a float tensor with an explicit format.
    pub fn quantize_with(t: &Tensor, format: QFormat) -> Self {
        let data = t.data().iter().map(|&x| format.quantize(x)).collect();
        Self { dims: t.dims().to_vec(), data, format }
    }

    /// Builds a quantized tensor from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match `dims`.
    pub fn from_raw(dims: &[usize], data: Vec<i16>, format: QFormat) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(data.len(), numel, "data length does not match dims");
        Self { dims: dims.to_vec(), data, format }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The i16 payload.
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// The fixed-point format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| self.format.dequantize(q)).collect();
        Tensor::from_vec(&self.dims, data)
    }

    /// Size in bytes of the dense payload (2 bytes per element).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&q| q == 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn format_selection_small_values() {
        assert_eq!(QFormat::for_max_abs(0.5).frac_bits(), 15);
        assert_eq!(QFormat::for_max_abs(1.5).frac_bits(), 14);
        assert_eq!(QFormat::for_max_abs(3.0).frac_bits(), 13);
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::new(15);
        assert_eq!(q.quantize(10.0), i16::MAX);
        assert_eq!(q.quantize(-10.0), i16::MIN);
    }

    #[test]
    fn requantize_shift_math() {
        // 0.5 (Q15) * 0.5 (Q15) accumulated in Q30, requantized to Q15 = 0.25
        let a = (0.5f32 * 32768.0) as i64;
        let acc = a * a;
        let out = requantize(acc, 15, 15, 15);
        assert_eq!(out, (0.25f32 * 32768.0) as i16);
    }

    #[test]
    fn requantize_negative_shift_scales_up() {
        assert_eq!(requantize(4, 2, 2, 6), 16);
    }

    #[test]
    fn qtensor_roundtrip_error_bounded() {
        let t = Tensor::from_vec(&[4], vec![0.1, -0.25, 0.7, -0.9]);
        let q = QTensor::quantize(&t);
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() <= 1.0 / q.format().scale());
        }
    }

    #[test]
    fn payload_bytes_is_two_per_element() {
        let q = QTensor::quantize(&Tensor::zeros(&[3, 5]));
        assert_eq!(q.payload_bytes(), 30);
        assert_eq!(q.count_zeros(), 15);
    }

    proptest! {
        #[test]
        fn roundtrip_error_within_half_ulp(xs in proptest::collection::vec(-0.999f32..0.999, 1..64)) {
            let t = Tensor::from_vec(&[xs.len()], xs.clone());
            let q = QTensor::quantize_with(&t, QFormat::new(15));
            let back = q.dequantize();
            for (a, b) in t.data().iter().zip(back.data().iter()) {
                prop_assert!((a - b).abs() <= 0.5 / 32768.0 + 1e-9);
            }
        }

        #[test]
        fn chosen_format_never_saturates(xs in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let t = Tensor::from_vec(&[xs.len()], xs.clone());
            let fmt = QFormat::for_max_abs(t.max_abs());
            for &x in t.data() {
                let q = fmt.quantize(x);
                prop_assert!(q != i16::MAX && q != i16::MIN || x.abs() >= 0.9 * 32767.0 / fmt.scale());
            }
        }

        // quantize -> dequantize is within half a quantization step for any
        // in-range value, at every format width.
        #[test]
        fn roundtrip_error_bounded_at_every_format(
            x in -40_000.0f32..40_000.0,
            f in 0u8..=15,
        ) {
            let fmt = QFormat::new(f);
            let limit = 32767.0 / fmt.scale();
            let x = x.clamp(-limit, limit);
            let err = (x - fmt.dequantize(fmt.quantize(x))).abs();
            prop_assert!(
                err <= 0.5 / fmt.scale() + 1e-6,
                "f={} x={} err={}", f, x, err
            );
        }

        // Out-of-range values saturate at exactly the i16 bounds — never
        // wrap — and the bound dequantizes to the format's extreme value.
        #[test]
        fn out_of_range_saturates_at_i16_bounds(
            mag in 0.0f32..1.0e6,
            f in 0u8..=15,
        ) {
            let fmt = QFormat::new(f);
            let limit = 32767.0 / fmt.scale();
            let x = limit + mag + 1.0 / fmt.scale();
            prop_assert_eq!(fmt.quantize(x), i16::MAX, "f={} x={}", f, x);
            prop_assert_eq!(fmt.quantize(-x), i16::MIN, "f={} x={}", f, x);
            // non-finite inputs also clamp rather than wrap
            prop_assert_eq!(fmt.quantize(f32::INFINITY), i16::MAX);
            prop_assert_eq!(fmt.quantize(f32::NEG_INFINITY), i16::MIN);
        }

        // Q8: quantize -> dequantize is within half a quantization step
        // for any in-range value, at every i8 format width.
        #[test]
        fn q8_roundtrip_error_bounded_at_every_format(
            x in -300.0f32..300.0,
            f in 0u8..=7,
        ) {
            let fmt = Q8Format::new(f);
            let limit = 127.0 / fmt.scale();
            let x = x.clamp(-limit, limit);
            let err = (x - fmt.dequantize(fmt.quantize(x))).abs();
            prop_assert!(err <= 0.5 / fmt.scale() + 1e-6, "f={} x={} err={}", f, x, err);
        }

        // Q8: out-of-range values saturate at exactly the i8 bounds.
        #[test]
        fn q8_out_of_range_saturates_at_i8_bounds(
            mag in 0.0f32..1.0e4,
            f in 0u8..=7,
        ) {
            let fmt = Q8Format::new(f);
            let limit = 127.0 / fmt.scale();
            let x = limit + mag + 1.0 / fmt.scale();
            prop_assert_eq!(fmt.quantize(x), i8::MAX, "f={} x={}", f, x);
            prop_assert_eq!(fmt.quantize(-x), i8::MIN, "f={} x={}", f, x);
            prop_assert_eq!(fmt.quantize(f32::INFINITY), i8::MAX);
            prop_assert_eq!(fmt.quantize(f32::NEG_INFINITY), i8::MIN);
        }

        // Q8: the chosen format never saturates in-range data, mirroring
        // the i16 contract (weights quantized this way stay off i8::MIN).
        #[test]
        fn q8_chosen_format_never_saturates(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let fmt = Q8Format::for_max_abs(max_abs.max(1e-6));
            for &x in &xs {
                let q = fmt.quantize(x);
                prop_assert!(q != i8::MIN, "for_max_abs headroom keeps weights off i8::MIN");
            }
        }

        // Q8: requantize8 up-then-down is the exact arithmetic shift.
        #[test]
        fn q8_requantize_shift_is_exact_for_representable_values(
            q in -128i32..=127,
            in_frac in 0u8..=7,
            d in 0u8..=7,
        ) {
            let acc = q << d;
            prop_assert_eq!(requantize8(acc, in_frac, d, in_frac) as i32, q);
        }

        // Q8: rounding in requantize8 is round-half-up on the shifted-out
        // bits, and saturation clamps instead of wrapping.
        #[test]
        fn q8_requantize_rounds_and_saturates(acc in i32::MIN/2..i32::MAX/2, shift in 1u8..=7) {
            let out = requantize8(acc, shift, 0, 0) as i64;
            let exact = (acc as i64 + (1i64 << (shift - 1))) >> shift;
            prop_assert_eq!(out, exact.clamp(i8::MIN as i64, i8::MAX as i64));
        }

        // A pure format change through `requantize` is the exact arithmetic
        // shift: scaling up by `2^d` then shifting back down reproduces the
        // value bit-for-bit (round-to-nearest leaves exact multiples alone).
        #[test]
        fn requantize_shift_is_exact_for_representable_values(
            q in -32_768i64..=32_767,
            in_frac in 0u8..=15,
            d in 0u8..=15,
        ) {
            // up then down: acc = q << d in (in_frac + d) frac bits
            let acc = q << d;
            prop_assert_eq!(requantize(acc, in_frac, d, in_frac) as i64, q);
            // down then up on an already-exact accumulator
            let up = requantize(q, in_frac, 0, (in_frac + d).min(15));
            let back = requantize(up as i64, (in_frac + d).min(15), 0, in_frac);
            if up as i64 == q << ((in_frac + d).min(15) - in_frac) {
                prop_assert_eq!(back as i64, q, "no saturation -> exact round trip");
            }
        }
    }
}
