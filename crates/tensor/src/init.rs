//! Weight initialization schemes.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kaiming-uniform initialization for a weight tensor whose first dimension
/// is the output dimension and remaining dimensions form the fan-in.
///
/// Bound is `sqrt(6 / fan_in)`, suitable for ReLU networks.
pub fn kaiming_uniform(dims: &[usize], seed: u64) -> Tensor {
    let fan_in: usize = dims[1..].iter().product::<usize>().max(1);
    let bound = (6.0 / fan_in as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let numel: usize = dims.iter().product();
    let data: Vec<f32> = (0..numel).map(|_| rng.gen_range(-bound..bound)).collect();
    Tensor::from_vec(dims, data)
}

/// Uniform initialization in `[-bound, bound]`, used for biases.
pub fn uniform(dims: &[usize], bound: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let numel: usize = dims.iter().product();
    let data: Vec<f32> =
        (0..numel).map(|_| if bound == 0.0 { 0.0 } else { rng.gen_range(-bound..bound) }).collect();
    Tensor::from_vec(dims, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_bound_respected() {
        let t = kaiming_uniform(&[8, 16, 3, 3], 42);
        let bound = (6.0f32 / (16.0 * 9.0)).sqrt();
        assert!(t.max_abs() <= bound);
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kaiming_uniform(&[4, 4], 7);
        let b = kaiming_uniform(&[4, 4], 7);
        let c = kaiming_uniform(&[4, 4], 8);
        assert_eq!(a.data(), b.data());
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn zero_bound_uniform_is_zero() {
        let t = uniform(&[5], 0.0, 1);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }
}
