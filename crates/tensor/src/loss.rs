//! Softmax cross-entropy loss.

use crate::Tensor;

/// Computes mean softmax cross-entropy over a batch and the gradient with
/// respect to the logits.
///
/// `logits` is `[N, classes]`; `targets` holds one class index per sample.
/// Returns `(mean_loss, grad)` where `grad` has the shape of `logits`.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size or any target index
/// is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.dims().len(), 2, "logits must be [N, classes]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(targets.len(), n, "one target per sample");
    let mut grad = Tensor::zeros(&[n, c]);
    let mut total = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (s, &t) in targets.iter().enumerate() {
        let row = &logits.data()[s * c..(s + 1) * c];
        assert!(t < c, "target {t} out of range for {c} classes");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let log_sum = sum.ln() + max;
        total += (log_sum - row[t]) as f64;
        let grow = &mut grad.data_mut()[s * c..(s + 1) * c];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = exps[j] / sum;
            *g = (p - if j == t { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    ((total / n as f64) as f32, grad)
}

/// Softmax probabilities for each row of a `[N, classes]` tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = Tensor::zeros(&[n, c]);
    for s in 0..n {
        let row = &logits.data()[s * c..(s + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for (j, &e) in exps.iter().enumerate() {
            out.data_mut()[s * c + j] = e / sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_sums_to_zero_per_sample() {
        let logits = Tensor::from_vec(&[1, 3], vec![2.0, -1.0, 0.5]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = grad.data().iter().sum();
        assert!(s.abs() < 1e-6);
        // the target coordinate gets negative gradient
        assert!(grad.data()[1] < 0.0);
    }

    #[test]
    fn grad_matches_numeric() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -0.2, 0.9, 1.4, 0.0, -0.5]);
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &targets);
            let num = (loss_p - loss_m) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "mismatch at {i}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![5.0, 1.0, -2.0, 0.0, 0.0, 0.0]);
        let p = softmax(&logits);
        for s in 0..2 {
            let sum: f32 = p.data()[s * 3..(s + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "one target per sample")]
    fn wrong_target_count_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(&[2, 3]), &[0]);
    }
}
