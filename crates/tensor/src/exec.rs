//! Per-request execution state for the shared-model inference path.
//!
//! The serving layer keeps one immutable copy of each loaded model (weights,
//! masks, and `SparseIndex` strips behind `Arc`s) and hands every in-flight
//! request its own [`ExecCtx`]: a recycled scratch arena plus an optional set
//! of per-layer [`WeightOverride`]s. Layers read weights through the context
//! (`ExecCtx::weights_for`), so a sensitivity probe can evaluate "this model
//! with layer 3's mask tightened" by installing one override — cloning a
//! single layer's weight buffer instead of the whole model.
//!
//! Scratch buffers are loaned with [`ExecCtx::take`] and returned with
//! [`ExecCtx::put`]; a request that serves many samples re-uses the same
//! im2col buffer instead of re-allocating per call. Nothing here affects
//! numerics: `Layer::infer` with a fresh or recycled context is bitwise
//! identical to `Layer::forward(x, false)`.

use crate::layer::Param;
use crate::sparse::{self, DispatchMode, SparseIndex};
use crate::Tensor;
use std::sync::Arc;

/// Replacement weights for one prunable layer, used by sensitivity probes to
/// evaluate a candidate mask without cloning the rest of the model.
#[derive(Debug, Clone)]
pub struct WeightOverride {
    /// `layer_id` of the prunable layer whose weight param is replaced.
    pub layer_id: usize,
    /// The replacement weight values (same shape as the layer's weights).
    pub w: Tensor,
    /// Block-sparse index over the override's mask, consulted under the same
    /// dispatch policy as [`Param::gemm_sparse`].
    pub sparse: Option<Arc<SparseIndex>>,
}

impl WeightOverride {
    /// Builds an override whose weights are `base ⊙ mask`, with the
    /// block-sparse index rebuilt from `mask` exactly as
    /// [`Param::set_mask`] would — so probe evaluation is bitwise identical
    /// to cloning the model and installing the mask.
    pub fn masked(layer_id: usize, base: &Tensor, mask: &Tensor) -> Self {
        assert_eq!(base.dims(), mask.dims(), "override mask shape mismatch");
        let mut w = base.clone();
        w.mul_assign(mask);
        let rows = base.dims()[0];
        let sparse = (rows > 0).then(|| {
            let cols = base.numel() / rows;
            Arc::new(SparseIndex::from_mask(mask.data(), rows, cols))
        });
        Self { layer_id, w, sparse }
    }
}

/// Per-request execution context: scratch-buffer pool + weight overrides.
///
/// One context belongs to one request (or one worker thread); it is cheap to
/// create and holds no model state, so any number of contexts can execute
/// against the same shared model concurrently.
#[derive(Debug, Default)]
pub struct ExecCtx {
    free: Vec<Vec<f32>>,
    free_i16: Vec<Vec<i16>>,
    free_i8: Vec<Vec<i8>>,
    overrides: Vec<WeightOverride>,
}

impl ExecCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loans a zeroed scratch buffer of exactly `len` elements, recycling a
    /// previously [`put`](Self::put) buffer when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a scratch buffer to the pool.
    pub fn put(&mut self, buf: Vec<f32>) {
        self.free.push(buf);
    }

    /// Loans a zeroed `i16` scratch buffer (quantized im2col / activations).
    pub fn take_i16(&mut self, len: usize) -> Vec<i16> {
        match self.free_i16.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => vec![0; len],
        }
    }

    /// Returns an `i16` scratch buffer to the pool.
    pub fn put_i16(&mut self, buf: Vec<i16>) {
        self.free_i16.push(buf);
    }

    /// Loans a zeroed `i8` scratch buffer (int8 im2col / activations).
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        match self.free_i8.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => vec![0; len],
        }
    }

    /// Returns an `i8` scratch buffer to the pool.
    pub fn put_i8(&mut self, buf: Vec<i8>) {
        self.free_i8.push(buf);
    }

    /// Installs a weight override; at most one per `layer_id` is consulted
    /// (the last installed wins).
    pub fn push_override(&mut self, ov: WeightOverride) {
        self.overrides.push(ov);
    }

    /// Removes all weight overrides.
    pub fn clear_overrides(&mut self) {
        self.overrides.clear();
    }

    /// Resolves the weight buffer and sparse-dispatch decision for a weight
    /// param: the override for `p.layer_id` when one is installed, the
    /// param's own value otherwise. The dispatch policy mirrors
    /// [`Param::gemm_sparse`] so overridden and native weights route through
    /// the same kernels.
    pub fn weights_for<'a>(&'a self, p: &'a Param) -> (&'a [f32], Option<&'a SparseIndex>) {
        match self.overrides.iter().rev().find(|ov| ov.layer_id == p.layer_id) {
            Some(ov) => {
                assert_eq!(ov.w.dims(), p.value.dims(), "override shape mismatch for {}", p.name);
                (ov.w.data(), dispatchable(ov.sparse.as_deref()))
            }
            None => (p.value.data(), p.gemm_sparse()),
        }
    }
}

/// Applies the global dispatch policy to an already-built sparse index
/// (the override-side mirror of [`Param::gemm_sparse`]).
fn dispatchable(idx: Option<&SparseIndex>) -> Option<&SparseIndex> {
    let idx = idx?;
    match sparse::dispatch_mode() {
        DispatchMode::ForceDense => None,
        DispatchMode::ForceSparse => Some(idx),
        DispatchMode::Auto => idx.below_dispatch_threshold().then_some(idx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_buffers_recycle_and_rezero() {
        let mut ctx = ExecCtx::new();
        let mut buf = ctx.take(4);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ctx.put(buf);
        let again = ctx.take(6);
        assert_eq!(again, vec![0.0; 6], "recycled scratch is re-zeroed and resized");
    }

    #[test]
    fn integer_scratch_pools_recycle_and_rezero() {
        let mut ctx = ExecCtx::new();
        let mut q15 = ctx.take_i16(3);
        q15.iter_mut().for_each(|v| *v = -5);
        ctx.put_i16(q15);
        assert_eq!(ctx.take_i16(5), vec![0i16; 5]);
        let mut q8 = ctx.take_i8(2);
        q8.iter_mut().for_each(|v| *v = 9);
        ctx.put_i8(q8);
        assert_eq!(ctx.take_i8(4), vec![0i8; 4]);
    }

    #[test]
    fn masked_override_matches_set_mask_semantics() {
        let base = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let mask = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let ov = WeightOverride::masked(7, &base, &mask);
        assert_eq!(ov.w.data(), &[1.0, 0.0, 0.0, 4.0]);
        let mut p = Param::new(7, "conv7.w", base);
        p.set_mask(mask);
        assert_eq!(ov.w.data(), p.value.data());
        let idx = ov.sparse.as_ref().expect("mask builds an index");
        assert_eq!(idx.alive_fraction(), p.sparse_index().unwrap().alive_fraction());
    }

    #[test]
    fn weights_for_prefers_matching_override() {
        let p = Param::new(3, "fc3.w", Tensor::from_vec(&[1, 2], vec![5.0, 6.0]));
        let mut ctx = ExecCtx::new();
        assert_eq!(ctx.weights_for(&p).0, &[5.0, 6.0]);
        ctx.push_override(WeightOverride {
            layer_id: 3,
            w: Tensor::from_vec(&[1, 2], vec![9.0, 9.0]),
            sparse: None,
        });
        assert_eq!(ctx.weights_for(&p).0, &[9.0, 9.0]);
        ctx.clear_overrides();
        assert_eq!(ctx.weights_for(&p).0, &[5.0, 6.0]);
    }
}
