//! Non-overlapping max-pool kernels behind the runtime SIMD dispatch level.
//!
//! One call pools a single `[h, w]` channel plane with window = stride =
//! `(kh, kw)` (floor semantics: trailing rows/columns that do not fill a
//! window are ignored, matching [`crate::layer::MaxPool2d`]). The scalar
//! specs are the original per-window loops and remain the executable
//! reference:
//!
//! * f32 ([`maxpool2d_f32_scalar`]): strict-greater replacement scanning
//!   the window in `(ky, kx)` order from `-inf` — among equal maxima the
//!   lexicographically first element wins, which pins both the argmax and
//!   the result *bits* (`+0.0` vs `-0.0`).
//! * i16 / i8 ([`maxpool2d_i16_scalar`], [`maxpool2d_i8`]): plain integer
//!   window max, as the Q15/Q8 graph evaluators compute it.
//!
//! # Exactness contract
//!
//! The AVX2 bodies are **bitwise equal to the specs for every finite
//! input** (NaN excluded — the pipeline's finite-data contract, shared
//! with [`crate::simd`]). Plain `_mm256_max_ps` would break that: its
//! tie/zero semantics (`max(+0,-0) = -0`) differ from the spec's
//! first-wins rule. The f32 bodies instead replicate the spec's exact
//! selection with `_mm256_cmp_ps(v, acc, GT_OQ)` + `blendv`, folding each
//! window row *first* (left-wins-ties pair max) and then across rows
//! (first-row-wins) — the same lexicographic winner as the scalar scan.
//! Integer max is associative and commutative with no representative
//! ambiguity, so the i16 bodies fold in any order via `_mm256_max_epi16`.
//!
//! Vectorized paths cover the window shapes the model zoo uses: `kw == 1`
//! (vertical pooling, 8/16 output lanes) and `kw == 2` (pair-deinterleave,
//! 8/16 outputs per step). A `[h, 1]` plane pooled `(kh, 1)` — the 1-D HAR
//! layout — is first re-expressed as a `[1, h]` plane pooled `(1, kh)`,
//! which is the identical element sequence per window and routes the 1-D
//! case onto the `kw == 2` vector path. Other widths fall back to the
//! scalar spec at either level.
//!
//! The train-mode forward ([`maxpool2d_f32_argmax`]) additionally records
//! the plane-relative offset of each window's winner; its vector path
//! (`kw == 1`) blends an i32 index register alongside the value register.
//! The backward pass ([`maxpool2d_backward_f32`]) is the adjoint scatter —
//! one gradient added at each recorded offset; windows are disjoint, so it
//! is memory-bound and stays scalar at both levels.

use crate::simd::{self, SimdLevel};

fn assert_pool<T>(src: &[T], h: usize, w: usize, kh: usize, kw: usize, dst_len: usize) {
    assert!(kh > 0 && kw > 0, "pool window");
    assert_eq!(src.len(), h * w, "pool src length");
    assert_eq!(dst_len, (h / kh) * (w / kw), "pool dst length");
}

/// Re-expresses a `[h, 1]` plane pooled `(kh, 1)` as `[1, h]` pooled
/// `(1, kh)`: the same contiguous element sequence per window, same
/// plane-relative offsets, but with a vectorizable output axis.
#[inline]
fn canonical(h: usize, w: usize, kh: usize, kw: usize) -> (usize, usize, usize, usize) {
    if w == 1 && kw == 1 {
        (1, h, 1, kh)
    } else {
        (h, w, kh, kw)
    }
}

// ---------------------------------------------------------------------
// f32 forward
// ---------------------------------------------------------------------

/// Max-pools one f32 plane, dispatched on the process SIMD level. Bitwise
/// equal to [`maxpool2d_f32_scalar`] for every finite input.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_f32(src: &[f32], h: usize, w: usize, kh: usize, kw: usize, dst: &mut [f32]) {
    assert_pool(src, h, w, kh, kw, dst.len());
    let (h, w, kh, kw) = canonical(h, w, kh, kw);
    #[cfg(target_arch = "x86_64")]
    if simd::simd_level() == SimdLevel::Avx2 && (kw == 1 || kw == 2) {
        // SAFETY: level only reports Avx2 on CPUs with avx2; geometry
        // asserted above.
        unsafe { avx2::maxpool_f32(src, h, w, kh, kw, dst) };
        return;
    }
    let _ = simd::simd_level();
    maxpool2d_f32_scalar_body(src, h, w, kh, kw, dst);
}

/// The f32 scalar spec: strict-greater window scan in `(ky, kx)` order.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_f32_scalar(
    src: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
) {
    assert_pool(src, h, w, kh, kw, dst.len());
    maxpool2d_f32_scalar_body(src, h, w, kh, kw, dst);
}

fn maxpool2d_f32_scalar_body(
    src: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
) {
    let _ = h;
    let (ho, wo) = (dst.len() / (w / kw).max(1), w / kw);
    for oy in 0..ho {
        for ox in 0..wo {
            let mut best = f32::NEG_INFINITY;
            for ky in 0..kh {
                for kx in 0..kw {
                    let v = src[(oy * kh + ky) * w + ox * kw + kx];
                    if v > best {
                        best = v;
                    }
                }
            }
            dst[oy * wo + ox] = best;
        }
    }
}

/// Train-mode forward: max-pools one f32 plane and records each window
/// winner's plane-relative offset in `arg`. Dispatched; bitwise equal to
/// [`maxpool2d_f32_argmax_scalar`] (values *and* offsets) for finite input.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_f32_argmax(
    src: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
    arg: &mut [usize],
) {
    assert_pool(src, h, w, kh, kw, dst.len());
    assert_eq!(arg.len(), dst.len(), "pool argmax length");
    let (h, w, kh, kw) = canonical(h, w, kh, kw);
    #[cfg(target_arch = "x86_64")]
    if simd::simd_level() == SimdLevel::Avx2 && kw == 1 {
        // SAFETY: level only reports Avx2 on CPUs with avx2; geometry
        // asserted above.
        unsafe { avx2::maxpool_f32_argmax_kw1(src, h, w, kh, dst, arg) };
        return;
    }
    let _ = simd::simd_level();
    maxpool2d_f32_argmax_scalar_body(src, h, w, kh, kw, dst, arg);
}

/// The train-mode scalar spec: strict-greater scan in `(ky, kx)` order,
/// first winner's offset recorded.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_f32_argmax_scalar(
    src: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
    arg: &mut [usize],
) {
    assert_pool(src, h, w, kh, kw, dst.len());
    assert_eq!(arg.len(), dst.len(), "pool argmax length");
    maxpool2d_f32_argmax_scalar_body(src, h, w, kh, kw, dst, arg);
}

#[allow(clippy::too_many_arguments)]
fn maxpool2d_f32_argmax_scalar_body(
    src: &[f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [f32],
    arg: &mut [usize],
) {
    let _ = h;
    let (ho, wo) = (dst.len() / (w / kw).max(1), w / kw);
    for oy in 0..ho {
        for ox in 0..wo {
            let mut best = f32::NEG_INFINITY;
            let mut best_off = 0usize;
            for ky in 0..kh {
                for kx in 0..kw {
                    let off = (oy * kh + ky) * w + ox * kw + kx;
                    let v = src[off];
                    if v > best {
                        best = v;
                        best_off = off;
                    }
                }
            }
            dst[oy * wo + ox] = best;
            arg[oy * wo + ox] = best_off;
        }
    }
}

/// The pooling adjoint: adds `grad[i]` at `gx[arg[i]]`. Offsets come from
/// [`maxpool2d_f32_argmax`]; windows are disjoint, so each target is hit at
/// most once per plane.
///
/// # Panics
///
/// Panics if `arg` and `grad` lengths differ or an offset is out of range.
pub fn maxpool2d_backward_f32(arg: &[usize], grad: &[f32], gx: &mut [f32]) {
    assert_eq!(arg.len(), grad.len(), "pool backward length");
    for (&src, &g) in arg.iter().zip(grad.iter()) {
        gx[src] += g;
    }
}

// ---------------------------------------------------------------------
// Integer forward
// ---------------------------------------------------------------------

/// Max-pools one i16 plane, dispatched on the process SIMD level. Bitwise
/// equal to [`maxpool2d_i16_scalar`] for every input (integer max has no
/// tie ambiguity).
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_i16(src: &[i16], h: usize, w: usize, kh: usize, kw: usize, dst: &mut [i16]) {
    assert_pool(src, h, w, kh, kw, dst.len());
    let (h, w, kh, kw) = canonical(h, w, kh, kw);
    #[cfg(target_arch = "x86_64")]
    if simd::simd_level() == SimdLevel::Avx2 && (kw == 1 || kw == 2) {
        // SAFETY: level only reports Avx2 on CPUs with avx2; geometry
        // asserted above.
        unsafe { avx2::maxpool_i16(src, h, w, kh, kw, dst) };
        return;
    }
    let _ = simd::simd_level();
    maxpool2d_i16_scalar_body(src, h, w, kh, kw, dst);
}

/// The i16 scalar spec: integer window max from `i16::MIN`, exactly the
/// Q15 graph evaluator's loop.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_i16_scalar(
    src: &[i16],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [i16],
) {
    assert_pool(src, h, w, kh, kw, dst.len());
    maxpool2d_i16_scalar_body(src, h, w, kh, kw, dst);
}

fn maxpool2d_i16_scalar_body(
    src: &[i16],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    dst: &mut [i16],
) {
    let _ = h;
    let (ho, wo) = (dst.len() / (w / kw).max(1), w / kw);
    for oy in 0..ho {
        for ox in 0..wo {
            let mut best = i16::MIN;
            for ky in 0..kh {
                for kx in 0..kw {
                    best = best.max(src[(oy * kh + ky) * w + ox * kw + kx]);
                }
            }
            dst[oy * wo + ox] = best;
        }
    }
}

/// Max-pools one i8 plane (integer window max). The Q8 evaluator's pooling
/// volume is half the Q15 one and far off the hot path, so this stays the
/// scalar loop at every dispatch level — trivially level-exact.
///
/// # Panics
///
/// Panics if slice lengths disagree with the pool geometry.
pub fn maxpool2d_i8(src: &[i8], h: usize, w: usize, kh: usize, kw: usize, dst: &mut [i8]) {
    assert_pool(src, h, w, kh, kw, dst.len());
    let (_, w, kh, kw) = canonical(h, w, kh, kw);
    let (ho, wo) = (dst.len() / (w / kw).max(1), w / kw);
    for oy in 0..ho {
        for ox in 0..wo {
            let mut best = i8::MIN;
            for ky in 0..kh {
                for kx in 0..kw {
                    best = best.max(src[(oy * kh + ky) * w + ox * kw + kx]);
                }
            }
            dst[oy * wo + ox] = best;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 pooling bodies. Every `unsafe fn` requires `avx2` (checked by
    //! the dispatchers) and the asserted pool geometry.
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// `select(acc, v, v > acc)` — the spec's strict-greater replacement,
    /// lane-wise; first operand wins ties (including `+0.0` vs `-0.0`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold_gt(acc: __m256, v: __m256) -> __m256 {
        _mm256_blendv_ps(acc, v, _mm256_cmp_ps(v, acc, _CMP_GT_OQ))
    }

    /// Left-wins-ties max of the 8 adjacent pairs in 16 consecutive f32,
    /// in output order. `(ky, kx)`-order equivalence: within each pair the
    /// even (kx = 0) element wins ties.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pairmax_f32(p: *const f32) -> __m256 {
        let v0 = _mm256_loadu_ps(p);
        let v1 = _mm256_loadu_ps(p.add(8));
        let evens = _mm256_shuffle_ps(v0, v1, 0b10_00_10_00);
        let odds = _mm256_shuffle_ps(v0, v1, 0b11_01_11_01);
        let m = fold_gt(evens, odds);
        // shuffle leaves pairs as [0,1,4,5 | 2,3,6,7]; restore order
        _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(m), 0b11_01_10_00))
    }

    /// f32 forward for `kw == 1` / `kw == 2`: each window row is folded
    /// first (pair max for `kw == 2`), then rows fold top-down with
    /// first-wins-ties — the spec's lexicographic winner.
    ///
    /// # Safety
    ///
    /// Requires avx2 and `src`/`dst` matching the pool geometry.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maxpool_f32(
        src: &[f32],
        _h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        dst: &mut [f32],
    ) {
        debug_assert!(kw == 1 || kw == 2);
        let wo = w / kw;
        let ho = dst.len() / wo.max(1);
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr();
        let wo8 = wo & !7;
        for oy in 0..ho {
            let row0 = oy * kh * w;
            let mut ox = 0usize;
            while ox < wo8 {
                let mut acc = if kw == 2 {
                    pairmax_f32(sp.add(row0 + 2 * ox))
                } else {
                    _mm256_loadu_ps(sp.add(row0 + ox))
                };
                for ky in 1..kh {
                    let row = row0 + ky * w;
                    let v = if kw == 2 {
                        pairmax_f32(sp.add(row + 2 * ox))
                    } else {
                        _mm256_loadu_ps(sp.add(row + ox))
                    };
                    acc = fold_gt(acc, v);
                }
                _mm256_storeu_ps(dp.add(oy * wo + ox), acc);
                ox += 8;
            }
            for ox in wo8..wo {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..kh {
                    for kx in 0..kw {
                        let v = *sp.add(row0 + ky * w + ox * kw + kx);
                        if v > best {
                            best = v;
                        }
                    }
                }
                *dp.add(oy * wo + ox) = best;
            }
        }
    }

    /// Train-mode f32 forward for `kw == 1`: blends an i32 offset register
    /// alongside the value register, so values *and* argmax offsets match
    /// the spec bitwise.
    ///
    /// # Safety
    ///
    /// Requires avx2 and `src`/`dst`/`arg` matching the pool geometry;
    /// plane offsets must fit in i32 (asserted).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maxpool_f32_argmax_kw1(
        src: &[f32],
        _h: usize,
        w: usize,
        kh: usize,
        dst: &mut [f32],
        arg: &mut [usize],
    ) {
        assert!(src.len() <= i32::MAX as usize, "plane offsets must fit i32");
        let wo = w;
        let ho = dst.len() / wo.max(1);
        let sp = src.as_ptr();
        let wo8 = wo & !7;
        let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let mut lanes = [0i32; 8];
        for oy in 0..ho {
            let row0 = oy * kh * w;
            let mut ox = 0usize;
            while ox < wo8 {
                let mut acc = _mm256_loadu_ps(sp.add(row0 + ox));
                let mut idx = _mm256_add_epi32(_mm256_set1_epi32((row0 + ox) as i32), iota);
                for ky in 1..kh {
                    let off = row0 + ky * w + ox;
                    let v = _mm256_loadu_ps(sp.add(off));
                    let m = _mm256_cmp_ps(v, acc, _CMP_GT_OQ);
                    acc = _mm256_blendv_ps(acc, v, m);
                    let cand = _mm256_add_epi32(_mm256_set1_epi32(off as i32), iota);
                    idx = _mm256_blendv_epi8(idx, cand, _mm256_castps_si256(m));
                }
                _mm256_storeu_ps(dst.as_mut_ptr().add(oy * wo + ox), acc);
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, idx);
                for (l, &v) in lanes.iter().enumerate() {
                    arg[oy * wo + ox + l] = v as usize;
                }
                ox += 8;
            }
            for ox in wo8..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0usize;
                for ky in 0..kh {
                    let off = row0 + ky * w + ox;
                    let v = *sp.add(off);
                    if v > best {
                        best = v;
                        best_off = off;
                    }
                }
                dst[oy * wo + ox] = best;
                arg[oy * wo + ox] = best_off;
            }
        }
    }

    /// Left-column pair max of 16 adjacent i16 pairs (32 consecutive i16),
    /// in output order. Integer max — no tie ambiguity to preserve.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pairmax_i16(v0: __m256i, v1: __m256i) -> __m256i {
        // pair max lands in the low 16 bits of each i32 lane (the high
        // half compares against a zero-shifted-in value and is discarded)
        let m0 = _mm256_max_epi16(v0, _mm256_srli_epi32(v0, 16));
        let m1 = _mm256_max_epi16(v1, _mm256_srli_epi32(v1, 16));
        // sign-extend the low halves and re-pack; values are genuine i16
        // so the pack saturation never fires
        let e0 = _mm256_srai_epi32(_mm256_slli_epi32(m0, 16), 16);
        let e1 = _mm256_srai_epi32(_mm256_slli_epi32(m1, 16), 16);
        let packed = _mm256_packs_epi32(e0, e1);
        _mm256_permute4x64_epi64(packed, 0b11_01_10_00)
    }

    /// i16 forward for `kw == 1` / `kw == 2`: rows fold with
    /// `_mm256_max_epi16` (order-free), pairs collapse once at the end for
    /// `kw == 2`.
    ///
    /// # Safety
    ///
    /// Requires avx2 and `src`/`dst` matching the pool geometry.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn maxpool_i16(
        src: &[i16],
        _h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        dst: &mut [i16],
    ) {
        debug_assert!(kw == 1 || kw == 2);
        let wo = w / kw;
        let ho = dst.len() / wo.max(1);
        let sp = src.as_ptr();
        let wo16 = wo & !15;
        for oy in 0..ho {
            let row0 = oy * kh * w;
            let mut ox = 0usize;
            while ox < wo16 {
                let (mut a0, mut a1) = if kw == 2 {
                    (
                        _mm256_loadu_si256(sp.add(row0 + 2 * ox) as *const __m256i),
                        _mm256_loadu_si256(sp.add(row0 + 2 * ox + 16) as *const __m256i),
                    )
                } else {
                    (
                        _mm256_loadu_si256(sp.add(row0 + ox) as *const __m256i),
                        _mm256_setzero_si256(),
                    )
                };
                for ky in 1..kh {
                    let row = row0 + ky * w;
                    if kw == 2 {
                        a0 = _mm256_max_epi16(
                            a0,
                            _mm256_loadu_si256(sp.add(row + 2 * ox) as *const __m256i),
                        );
                        a1 = _mm256_max_epi16(
                            a1,
                            _mm256_loadu_si256(sp.add(row + 2 * ox + 16) as *const __m256i),
                        );
                    } else {
                        a0 = _mm256_max_epi16(
                            a0,
                            _mm256_loadu_si256(sp.add(row + ox) as *const __m256i),
                        );
                    }
                }
                let out = if kw == 2 { pairmax_i16(a0, a1) } else { a0 };
                _mm256_storeu_si256(dst.as_mut_ptr().add(oy * wo + ox) as *mut __m256i, out);
                ox += 16;
            }
            for ox in wo16..wo {
                let mut best = i16::MIN;
                for ky in 0..kh {
                    for kx in 0..kw {
                        best = best.max(*sp.add(row0 + ky * w + ox * kw + kx));
                    }
                }
                dst[oy * wo + ox] = best;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_f32(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as i64 * 2_654_435_761 % 1000) - 500) as f32 / 64.0).collect()
    }

    #[test]
    fn scalar_spec_matches_hand_windows() {
        // 4x4 plane, 2x2 windows
        #[rustfmt::skip]
        let src = [
            1.0, 5.0, -2.0, 0.0,
            3.0, 4.0,  7.0, 1.0,
            0.0, 0.0,  9.0, 8.0,
            2.0, 1.0,  6.0, 6.5,
        ];
        let mut dst = [0f32; 4];
        maxpool2d_f32_scalar(&src, 4, 4, 2, 2, &mut dst);
        assert_eq!(dst, [5.0, 7.0, 2.0, 9.0]);
    }

    #[test]
    fn argmax_records_first_winner_and_backward_routes_there() {
        let src = [2.0f32, 2.0, 1.0, 0.0]; // tie: first element wins
        let mut dst = [0f32; 1];
        let mut arg = [0usize; 1];
        maxpool2d_f32_argmax_scalar(&src, 2, 2, 2, 2, &mut dst, &mut arg);
        assert_eq!((dst[0], arg[0]), (2.0, 0));
        let mut gx = [0f32; 4];
        maxpool2d_backward_f32(&arg, &[3.5], &mut gx);
        assert_eq!(gx, [3.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn signed_zero_ties_keep_the_first_bits() {
        let src = [-0.0f32, 0.0, -1.0, -2.0];
        let mut dst = [0f32; 1];
        maxpool2d_f32_scalar(&src, 2, 2, 2, 2, &mut dst);
        assert_eq!(dst[0].to_bits(), (-0.0f32).to_bits(), "first max wins ties bitwise");
        // dispatched entry agrees at the current level
        let mut dst2 = [0f32; 1];
        maxpool2d_f32(&src, 2, 2, 2, 2, &mut dst2);
        assert_eq!(dst[0].to_bits(), dst2[0].to_bits());
    }

    #[test]
    fn one_d_canonicalization_is_the_same_sequence() {
        let src = plane_f32(12);
        let mut a = vec![0f32; 6];
        let mut b = vec![0f32; 6];
        maxpool2d_f32_scalar(&src, 12, 1, 2, 1, &mut a);
        maxpool2d_f32(&src, 12, 1, 2, 1, &mut b);
        assert_eq!(a, b);
        let mut arg_a = vec![0usize; 6];
        let mut arg_b = vec![0usize; 6];
        maxpool2d_f32_argmax_scalar(&src, 12, 1, 2, 1, &mut a, &mut arg_a);
        maxpool2d_f32_argmax(&src, 12, 1, 2, 1, &mut b, &mut arg_b);
        assert_eq!((a, arg_a), (b, arg_b));
    }

    #[test]
    fn odd_tails_are_ignored() {
        // 5x5 with 2x2 windows: row 4 and column 4 never participate
        let mut src = vec![0f32; 25];
        src[24] = 100.0;
        src[0] = 1.0;
        let mut dst = vec![0f32; 4];
        maxpool2d_f32_scalar(&src, 5, 5, 2, 2, &mut dst);
        assert_eq!(dst, [1.0, 0.0, 0.0, 0.0]);
        let mut dst_i = vec![0i16; 4];
        let src_i: Vec<i16> = src.iter().map(|&v| v as i16).collect();
        maxpool2d_i16_scalar(&src_i, 5, 5, 2, 2, &mut dst_i);
        assert_eq!(dst_i, [1, 0, 0, 0]);
    }

    #[test]
    fn i16_and_i8_pools_agree_with_f32_on_integral_data() {
        let src_i: Vec<i16> = (0..64).map(|i| ((i * 37) % 200 - 100) as i16).collect();
        let src_f: Vec<f32> = src_i.iter().map(|&v| v as f32).collect();
        let src_b: Vec<i8> = src_i.iter().map(|&v| (v / 2) as i8).collect();
        for &(kh, kw) in &[(2usize, 2usize), (2, 1), (1, 2), (4, 2)] {
            let (ho, wo) = (8 / kh, 8 / kw);
            let mut di = vec![0i16; ho * wo];
            let mut df = vec![0f32; ho * wo];
            let mut db = vec![0i8; ho * wo];
            maxpool2d_i16(&src_i, 8, 8, kh, kw, &mut di);
            maxpool2d_f32(&src_f, 8, 8, kh, kw, &mut df);
            maxpool2d_i8(&src_b, 8, 8, kh, kw, &mut db);
            for j in 0..ho * wo {
                assert_eq!(di[j] as f32, df[j], "{kh}x{kw} at {j}");
                let mut expect = i8::MIN;
                for ky in 0..kh {
                    for kx in 0..kw {
                        expect = expect.max(src_b[((j / wo) * kh + ky) * 8 + (j % wo) * kw + kx]);
                    }
                }
                assert_eq!(db[j], expect, "{kh}x{kw} at {j}");
            }
        }
    }
}
