//! Trainable layers: convolution, fully-connected, pooling, activations.
//!
//! Layers follow a classic forward/backward protocol. Each layer caches what
//! it needs during `forward` and consumes it in `backward`. Prunable layers
//! (convolution and fully-connected) expose their weights as [`Param`]s
//! carrying an optional pruning mask; the optimizer re-applies the mask after
//! every step so that pruned weights stay at exactly zero through
//! fine-tuning.

use crate::exec::ExecCtx;
use crate::matmul::{matmul_a_bt, matmul_acc, matmul_at_b};
use crate::sparse::{self, DispatchMode, SparseIndex};
use crate::{init, par, Tensor};
use crate::{pack, pool};
use iprune_obs::metrics::{self, Counter};
use std::sync::{Arc, OnceLock};

/// A trainable parameter: value, gradient accumulator, and optional pruning
/// mask (1.0 = keep, 0.0 = pruned).
#[derive(Debug)]
pub struct Param {
    /// Identifier of the prunable layer this parameter belongs to. Layers
    /// without a meaningful id use `usize::MAX`.
    pub layer_id: usize,
    /// Human-readable name such as `"conv3.w"`.
    pub name: String,
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Optional pruning mask, same shape as `value`.
    pub mask: Option<Tensor>,
    /// Block-sparse index over `mask`, rebuilt whenever the mask changes.
    /// `Arc` so that model clones (parallel evaluate, sensitivity probes)
    /// share one index. Private: the field must stay in sync with `mask`.
    sparse: Option<Arc<SparseIndex>>,
}

/// Counts weight-buffer clones (`*.w` params only): the serving layer's
/// zero-copy contract is "no weight clones per served request", and
/// `tests/serving_determinism.rs` asserts it against this counter.
fn weight_clone_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("tensor.weight_clones"))
}

/// Total weight-buffer clones since process start (monotonic).
pub fn weight_clone_count() -> u64 {
    weight_clone_counter().get()
}

impl Clone for Param {
    fn clone(&self) -> Self {
        if self.name.ends_with(".w") {
            weight_clone_counter().inc();
        }
        Self {
            layer_id: self.layer_id,
            name: self.name.clone(),
            value: self.value.clone(),
            grad: self.grad.clone(),
            mask: self.mask.clone(),
            sparse: self.sparse.clone(),
        }
    }
}

impl Param {
    /// Creates a parameter with a zeroed gradient and no mask.
    pub fn new(layer_id: usize, name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Self { layer_id, name: name.into(), value, grad, mask: None, sparse: None }
    }

    /// Builds the block-sparse index for `mask` over this parameter viewed
    /// as a `dims[0] × (numel / dims[0])` matrix — the shape every GEMM
    /// call site uses.
    fn build_sparse(&self, mask: &Tensor) -> Option<Arc<SparseIndex>> {
        let rows = *self.value.dims().first()?;
        if rows == 0 {
            return None;
        }
        let cols = self.value.numel() / rows;
        Some(Arc::new(SparseIndex::from_mask(mask.data(), rows, cols)))
    }

    /// Installs (or replaces) the pruning mask, immediately zeroes the
    /// masked weights, and rebuilds the block-sparse index.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the parameter shape.
    pub fn set_mask(&mut self, mask: Tensor) {
        assert_eq!(mask.dims(), self.value.dims(), "mask shape mismatch for {}", self.name);
        self.value.mul_assign(&mask);
        self.sparse = self.build_sparse(&mask);
        self.mask = Some(mask);
    }

    /// Re-applies the mask to both value and gradient (no-op when
    /// unmasked), building the block-sparse index if it is missing.
    pub fn apply_mask(&mut self) {
        if let Some(mask) = self.mask.take() {
            self.value.mul_assign(&mask);
            self.grad.mul_assign(&mask);
            if self.sparse.is_none() {
                self.sparse = self.build_sparse(&mask);
            }
            self.mask = Some(mask);
        }
    }

    /// The mask-derived block-sparse index, if a mask is installed.
    pub fn sparse_index(&self) -> Option<&SparseIndex> {
        self.sparse.as_deref()
    }

    /// The block-sparse index *iff* the current dispatch policy routes this
    /// parameter's GEMMs through the sparse kernels: in [`DispatchMode::Auto`]
    /// that means the alive-block coverage is below
    /// [`sparse::SPARSE_DENSITY_THRESHOLD`].
    pub fn gemm_sparse(&self) -> Option<&SparseIndex> {
        let idx = self.sparse.as_deref()?;
        match sparse::dispatch_mode() {
            DispatchMode::ForceDense => None,
            DispatchMode::ForceSparse => Some(idx),
            DispatchMode::Auto => idx.below_dispatch_threshold().then_some(idx),
        }
    }

    /// Like [`Self::gemm_sparse`] but clones the `Arc`, for call sites that
    /// also need to borrow the parameter mutably (gradient accumulation).
    pub fn gemm_sparse_arc(&self) -> Option<Arc<SparseIndex>> {
        self.gemm_sparse()?;
        self.sparse.clone()
    }

    /// Fraction of weights still unmasked (1.0 when no mask is installed).
    pub fn density(&self) -> f64 {
        match &self.mask {
            None => 1.0,
            Some(m) => {
                let kept: f64 = m.data().iter().map(|&x| x as f64).sum();
                kept / m.numel() as f64
            }
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// Coarse classification of a layer, used by model statistics and by the
/// deployment pipeline to build per-layer execution plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected (linear).
    Fc,
    /// Max pooling.
    Pool,
    /// Anything else (activation, reshape, …).
    Other,
}

/// A differentiable network layer.
///
/// `forward` must be called before `backward`; layers cache forward state.
///
/// Layers are `Send + Sync` and cloneable through [`Layer::clone_box`] so
/// that whole models can be snapshotted and handed to [`crate::par`] workers
/// (e.g. independent sensitivity probes evaluating cloned models).
pub trait Layer: Send + Sync {
    /// Computes the layer output. `train` enables caching for backward.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad` (w.r.t. the output) back to the input, accumulating
    /// parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode `forward`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Shared-state inference: computes the same output as
    /// `forward(x, false)` — bitwise — without mutating the layer, reading
    /// weights and scratch through the per-request [`ExecCtx`]. This is the
    /// path the serving front end and the parallel evaluators use: one
    /// loaded model, many concurrent contexts, zero weight clones.
    ///
    /// The default panics; every layer in this workspace overrides it.
    fn infer(&self, _x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        panic!("layer `{}` has no shared-state inference path", self.describe());
    }

    /// Visits every trainable parameter. The default is parameter-free.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every trainable parameter by shared reference. The default is
    /// parameter-free. Prunable layers override this so `Arc`-shared models
    /// can be inspected (weights, masks, densities) without `&mut` access.
    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Param)) {}

    /// The coarse layer kind.
    fn kind(&self) -> LayerKind {
        LayerKind::Other
    }

    /// Short human-readable description.
    fn describe(&self) -> String;

    /// Clones the layer, caches and all, into a fresh box.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution over NCHW tensors, implemented by im2col + GEMM.
///
/// Weight layout is `[cout, cin, kh, kw]`; bias is `[cout]`. Forward and
/// backward parallelize across the batch: each sample's im2col/GEMM (and in
/// backward its private slice of the input gradient) is handled by one
/// [`crate::par`] worker, and per-sample weight-gradient partials are
/// reduced in sample order on the calling thread so results are
/// bit-identical to the serial loop at any thread count.
#[derive(Clone)]
pub struct Conv2d {
    layer_id: usize,
    cin: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
    w: Param,
    b: Param,
    cached_input: Option<Tensor>,
    cached_cols: Vec<Vec<f32>>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform weights seeded by
    /// `layer_id` (so networks are reproducible end to end).
    pub fn new(
        layer_id: usize,
        cin: usize,
        cout: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self::with_shape(layer_id, cin, cout, kernel, kernel, stride, pad, pad)
    }

    /// Creates a convolution with a rectangular kernel and independent
    /// height/width padding (e.g. a 3x1 temporal kernel for 1-D data).
    #[allow(clippy::too_many_arguments)]
    pub fn with_shape(
        layer_id: usize,
        cin: usize,
        cout: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> Self {
        let w = init::kaiming_uniform(&[cout, cin, kh, kw], 0x5EED_0000 + layer_id as u64);
        let b = Tensor::zeros(&[cout]);
        Self {
            layer_id,
            cin,
            cout,
            kh,
            kw,
            stride,
            pad_h,
            pad_w,
            w: Param::new(layer_id, format!("conv{layer_id}.w"), w),
            b: Param::new(layer_id, format!("conv{layer_id}.b"), b),
            cached_input: None,
            cached_cols: Vec::new(),
        }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad_h - self.kh) / self.stride + 1,
            (w + 2 * self.pad_w - self.kw) / self.stride + 1,
        )
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// The packing geometry for an input of `(h, w)`.
    fn conv_shape(&self, h: usize, w: usize, ho: usize, wo: usize) -> pack::ConvShape {
        pack::ConvShape {
            cin: self.cin,
            kh: self.kh,
            kw: self.kw,
            stride: self.stride,
            pad_h: self.pad_h,
            pad_w: self.pad_w,
            in_h: h,
            in_w: w,
            out_h: ho,
            out_w: wo,
        }
    }

    /// im2col for one sample: writes a `[cin*kh*kw, ho*wo]` matrix through
    /// the dispatched packing kernel ([`pack::im2col_f32`] — bitwise equal
    /// to its scalar spec, i.e. to the original per-element loop, at every
    /// SIMD level).
    fn im2col(&self, x: &Tensor, n: usize, ho: usize, wo: usize, col: &mut [f32]) {
        let (h, w) = (x.dims()[2], x.dims()[3]);
        let s = self.conv_shape(h, w, ho, wo);
        let base = n * s.in_len();
        pack::im2col_f32(&x.data()[base..base + s.in_len()], &s, col);
    }

    /// Scatter-adds a `[cin*kh*kw, ho*wo]` gradient matrix back to one
    /// sample's `[cin, h, w]` input-gradient slice (the adjoint of
    /// [`Self::im2col`]).
    fn col2im(&self, grad_col: &[f32], gx_s: &mut [f32], h: usize, w: usize, ho: usize, wo: usize) {
        let khw = self.kh * self.kw;
        let hw_out = ho * wo;
        for c in 0..self.cin {
            for ky in 0..self.kh {
                for kx in 0..self.kw {
                    let row = (c * khw + ky * self.kw + kx) * hw_out;
                    for oy in 0..ho {
                        let iy = (oy * self.stride + ky) as isize - self.pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..wo {
                            let ix = (ox * self.stride + kx) as isize - self.pad_w as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let off = c * h * w + iy as usize * w + ix as usize;
                            gx_s[off] += grad_col[row + oy * wo + ox];
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims().len(), 4, "Conv2d expects NCHW input");
        assert_eq!(x.dims()[1], self.cin, "Conv2d {} input channels", self.layer_id);
        let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.out_hw(h, w);
        let k = self.cin * self.kh * self.kw;
        let hw_out = ho * wo;
        let mut out = Tensor::zeros(&[n, self.cout, ho, wo]);
        // One par worker per sample: each owns its output slice and im2col
        // scratch, so there is no cross-sample reduction to order.
        let this = &*self;
        let w_sparse = self.w.gemm_sparse();
        let cols = par::par_chunks_map(out.data_mut(), self.cout * hw_out, |s, out_slice| {
            let mut col = vec![0.0f32; k * hw_out];
            this.im2col(x, s, ho, wo, &mut col);
            match w_sparse {
                Some(idx) => sparse::matmul_acc_sparse_lhs(
                    idx,
                    this.w.value.data(),
                    &col,
                    out_slice,
                    this.cout,
                    k,
                    hw_out,
                ),
                None => matmul_acc(this.w.value.data(), &col, out_slice, this.cout, k, hw_out),
            }
            for m in 0..this.cout {
                let bias = this.b.value.data()[m];
                for v in &mut out_slice[m * hw_out..(m + 1) * hw_out] {
                    *v += bias;
                }
            }
            if train {
                Some(col)
            } else {
                None
            }
        });
        if train {
            self.cached_cols = cols.into_iter().map(|c| c.expect("train-mode col")).collect();
            self.cached_input = Some(x.clone());
        }
        out
    }

    fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        assert_eq!(x.dims().len(), 4, "Conv2d expects NCHW input");
        assert_eq!(x.dims()[1], self.cin, "Conv2d {} input channels", self.layer_id);
        let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.out_hw(h, w);
        let k = self.cin * self.kh * self.kw;
        let hw_out = ho * wo;
        let mut out = Tensor::zeros(&[n, self.cout, ho, wo]);
        if !par::in_worker() && par::workers_for(n) > 1 {
            // Batched call from the coordinating thread: fan samples over
            // the worker pool exactly like `forward` (per-worker scratch).
            let this = self;
            let (w_data, w_sparse) = ctx.weights_for(&self.w);
            par::par_chunks_map(out.data_mut(), self.cout * hw_out, |s, out_slice| {
                let mut col = vec![0.0f32; k * hw_out];
                this.im2col(x, s, ho, wo, &mut col);
                match w_sparse {
                    Some(idx) => sparse::matmul_acc_sparse_lhs(
                        idx, w_data, &col, out_slice, this.cout, k, hw_out,
                    ),
                    None => matmul_acc(w_data, &col, out_slice, this.cout, k, hw_out),
                }
                for m in 0..this.cout {
                    let bias = this.b.value.data()[m];
                    for v in &mut out_slice[m * hw_out..(m + 1) * hw_out] {
                        *v += bias;
                    }
                }
            });
        } else {
            // Serial (or nested-in-worker) call: re-use the context's im2col
            // scratch across samples. `im2col` overwrites every element, so
            // the recycled buffer is bitwise equivalent to a fresh one.
            let mut col = ctx.take(k * hw_out);
            let (w_data, w_sparse) = ctx.weights_for(&self.w);
            for s in 0..n {
                self.im2col(x, s, ho, wo, &mut col);
                let out_slice =
                    &mut out.data_mut()[s * self.cout * hw_out..(s + 1) * self.cout * hw_out];
                match w_sparse {
                    Some(idx) => sparse::matmul_acc_sparse_lhs(
                        idx, w_data, &col, out_slice, self.cout, k, hw_out,
                    ),
                    None => matmul_acc(w_data, &col, out_slice, self.cout, k, hw_out),
                }
                for m in 0..self.cout {
                    let bias = self.b.value.data()[m];
                    for v in &mut out_slice[m * hw_out..(m + 1) * hw_out] {
                        *v += bias;
                    }
                }
            }
            ctx.put(col);
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("Conv2d::backward before forward(train)");
        let (n, h, w) = (x.dims()[0], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.out_hw(h, w);
        let k = self.cin * self.kh * self.kw;
        let hw_out = ho * wo;
        assert_eq!(grad.dims(), &[n, self.cout, ho, wo]);
        let mut gx = Tensor::zeros(x.dims());
        // One par worker per sample. Each computes its dW/db into private
        // zeroed partials (a dot accumulated from zero is bitwise the value
        // itself) and scatter-adds dX into its own gx slice; the partials
        // are then folded into the shared gradients in ascending sample
        // order, which replays the serial loop's add sequence exactly.
        let this = &*self;
        let w_sparse = self.w.gemm_sparse();
        let partials = par::par_chunks_map(gx.data_mut(), self.cin * h * w, |s, gx_s| {
            let g_slice = &grad.data()[s * this.cout * hw_out..(s + 1) * this.cout * hw_out];
            let col = &this.cached_cols[s];
            // dW_s = dY (M x HW) * col^T (HW x K); on the sparse path only
            // alive blocks accumulate — dead-block gradients would be
            // zeroed by the optimizer's mask application anyway
            let mut dw = vec![0.0f32; this.w.grad.numel()];
            match w_sparse {
                Some(idx) => {
                    sparse::matmul_a_bt_sparse_out(idx, g_slice, col, &mut dw, this.cout, hw_out, k)
                }
                None => matmul_a_bt(g_slice, col, &mut dw, this.cout, hw_out, k),
            }
            // db_s = row sums of dY
            let mut db = vec![0.0f32; this.cout];
            for (m, dbm) in db.iter_mut().enumerate() {
                *dbm = g_slice[m * hw_out..(m + 1) * hw_out].iter().sum();
            }
            // dcol = W^T (K x M) * dY (M x HW), scattered into this
            // sample's gx slice
            let mut grad_col = vec![0.0f32; k * hw_out];
            match w_sparse {
                Some(idx) => sparse::matmul_at_b_sparse_lhs(
                    idx,
                    this.w.value.data(),
                    g_slice,
                    &mut grad_col,
                    k,
                    this.cout,
                    hw_out,
                ),
                None => {
                    matmul_at_b(this.w.value.data(), g_slice, &mut grad_col, k, this.cout, hw_out)
                }
            }
            this.col2im(&grad_col, gx_s, h, w, ho, wo);
            (dw, db)
        });
        for (dw, db) in &partials {
            for (g, &d) in self.w.grad.data_mut().iter_mut().zip(dw.iter()) {
                *g += d;
            }
            for (g, &d) in self.b.grad.data_mut().iter_mut().zip(db.iter()) {
                *g += d;
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn describe(&self) -> String {
        format!(
            "conv{} {}x{}x{}x{} s{} p{}x{}",
            self.layer_id,
            self.cout,
            self.cin,
            self.kh,
            self.kw,
            self.stride,
            self.pad_h,
            self.pad_w
        )
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully-connected layer over `[N, din]` inputs. Weight layout `[dout, din]`.
#[derive(Clone)]
pub struct Linear {
    layer_id: usize,
    din: usize,
    dout: usize,
    w: Param,
    b: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-uniform weights seeded by
    /// `layer_id`.
    pub fn new(din: usize, dout: usize, layer_id: usize) -> Self {
        let w = init::kaiming_uniform(&[dout, din], 0x5EED_1000 + layer_id as u64);
        let b = Tensor::zeros(&[dout]);
        Self {
            layer_id,
            din,
            dout,
            w: Param::new(layer_id, format!("fc{layer_id}.w"), w),
            b: Param::new(layer_id, format!("fc{layer_id}.b"), b),
            cached_input: None,
        }
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.w
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims().len(), 2, "Linear expects [N, din]");
        assert_eq!(x.dims()[1], self.din, "Linear {} input dim", self.layer_id);
        let n = x.dims()[0];
        let mut out = Tensor::zeros(&[n, self.dout]);
        match self.w.gemm_sparse() {
            Some(idx) => sparse::matmul_a_bt_sparse_rhs(
                idx,
                x.data(),
                self.w.value.data(),
                out.data_mut(),
                n,
                self.din,
                self.dout,
            ),
            None => {
                matmul_a_bt(x.data(), self.w.value.data(), out.data_mut(), n, self.din, self.dout)
            }
        }
        for s in 0..n {
            for (j, &bias) in self.b.value.data().iter().enumerate() {
                out.data_mut()[s * self.dout + j] += bias;
            }
        }
        if train {
            self.cached_input = Some(x.clone());
        }
        out
    }

    fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        assert_eq!(x.dims().len(), 2, "Linear expects [N, din]");
        assert_eq!(x.dims()[1], self.din, "Linear {} input dim", self.layer_id);
        let n = x.dims()[0];
        let mut out = Tensor::zeros(&[n, self.dout]);
        let (w_data, w_sparse) = ctx.weights_for(&self.w);
        match w_sparse {
            Some(idx) => sparse::matmul_a_bt_sparse_rhs(
                idx,
                x.data(),
                w_data,
                out.data_mut(),
                n,
                self.din,
                self.dout,
            ),
            None => matmul_a_bt(x.data(), w_data, out.data_mut(), n, self.din, self.dout),
        }
        for s in 0..n {
            for (j, &bias) in self.b.value.data().iter().enumerate() {
                out.data_mut()[s * self.dout + j] += bias;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("Linear::backward before forward(train)");
        let n = x.dims()[0];
        assert_eq!(grad.dims(), &[n, self.dout]);
        // dW += dY^T (F x N) * X (N x D); on the sparse path only alive
        // blocks accumulate — dead-block gradients would be zeroed by the
        // optimizer's mask application anyway
        match self.w.gemm_sparse_arc() {
            Some(idx) => sparse::matmul_at_b_sparse_out(
                &idx,
                grad.data(),
                x.data(),
                self.w.grad.data_mut(),
                self.dout,
                n,
                self.din,
            ),
            None => {
                matmul_at_b(grad.data(), x.data(), self.w.grad.data_mut(), self.dout, n, self.din)
            }
        }
        for s in 0..n {
            for j in 0..self.dout {
                self.b.grad.data_mut()[j] += grad.data()[s * self.dout + j];
            }
        }
        // dX = dY (N x F) * W (F x D)
        let mut gx = Tensor::zeros(&[n, self.din]);
        match self.w.gemm_sparse() {
            Some(idx) => sparse::matmul_acc_sparse_rhs(
                idx,
                grad.data(),
                self.w.value.data(),
                gx.data_mut(),
                n,
                self.dout,
                self.din,
            ),
            None => {
                matmul_acc(grad.data(), self.w.value.data(), gx.data_mut(), n, self.dout, self.din)
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Fc
    }

    fn describe(&self) -> String {
        format!("fc{} {}x{}", self.layer_id, self.dout, self.din)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

/// Non-overlapping max pooling with window = stride = `k` (height only when
/// the width is already 1, as in the 1-D HAR model).
#[derive(Clone)]
pub struct MaxPool2d {
    kh: usize,
    kw: usize,
    argmax: Vec<usize>,
    in_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Square `k`×`k` pooling.
    pub fn new(k: usize) -> Self {
        Self { kh: k, kw: k, argmax: Vec::new(), in_dims: Vec::new() }
    }

    /// Rectangular pooling (e.g. `kh`=2, `kw`=1 for temporal data).
    pub fn with_window(kh: usize, kw: usize) -> Self {
        Self { kh, kw, argmax: Vec::new(), in_dims: Vec::new() }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.dims().len(), 4, "MaxPool2d expects NCHW input");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (kh, kw) = (self.kh, self.kw);
        let (ho, wo) = (h / kh, w / kw);
        let (plane, oplane) = (h * w, ho * wo);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        if train {
            self.argmax = vec![0; n * c * oplane];
            self.in_dims = x.dims().to_vec();
        }
        // one dispatched pool kernel per channel plane; the kernel records
        // plane-relative argmax offsets, rebased to tensor offsets here
        for p in 0..n * c {
            let src = &x.data()[p * plane..(p + 1) * plane];
            let dst = &mut out.data_mut()[p * oplane..(p + 1) * oplane];
            if train {
                let arg = &mut self.argmax[p * oplane..(p + 1) * oplane];
                pool::maxpool2d_f32_argmax(src, h, w, kh, kw, dst, arg);
                for a in arg.iter_mut() {
                    *a += p * plane;
                }
            } else {
                pool::maxpool2d_f32(src, h, w, kh, kw, dst);
            }
        }
        out
    }

    fn infer(&self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        assert_eq!(x.dims().len(), 4, "MaxPool2d expects NCHW input");
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (ho, wo) = (h / self.kh, w / self.kw);
        let (plane, oplane) = (h * w, ho * wo);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        for p in 0..n * c {
            let src = &x.data()[p * plane..(p + 1) * plane];
            let dst = &mut out.data_mut()[p * oplane..(p + 1) * oplane];
            pool::maxpool2d_f32(src, h, w, self.kh, self.kw, dst);
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_dims.is_empty(), "MaxPool2d::backward before forward(train)");
        let mut gx = Tensor::zeros(&self.in_dims);
        pool::maxpool2d_backward_f32(&self.argmax, grad.data(), gx.data_mut());
        gx
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn describe(&self) -> String {
        format!("maxpool {}x{}", self.kh, self.kw)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
#[derive(Clone)]
pub struct GlobalAvgPool {
    in_dims: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates the pooling layer.
    pub fn new() -> Self {
        Self { in_dims: Vec::new() }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let mut out = Tensor::zeros(&[n, c]);
        let inv = 1.0 / (h * w) as f32;
        for s in 0..n {
            for ch in 0..c {
                let base = x.offset4(s, ch, 0, 0);
                let sum: f32 = x.data()[base..base + h * w].iter().sum();
                out.data_mut()[s * c + ch] = sum * inv;
            }
        }
        if train {
            self.in_dims = x.dims().to_vec();
        }
        out
    }

    fn infer(&self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let mut out = Tensor::zeros(&[n, c]);
        let inv = 1.0 / (h * w) as f32;
        for s in 0..n {
            for ch in 0..c {
                let base = x.offset4(s, ch, 0, 0);
                let sum: f32 = x.data()[base..base + h * w].iter().sum();
                out.data_mut()[s * c + ch] = sum * inv;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_dims.is_empty(), "GlobalAvgPool::backward before forward(train)");
        let (n, c, h, w) = (self.in_dims[0], self.in_dims[1], self.in_dims[2], self.in_dims[3]);
        let mut gx = Tensor::zeros(&self.in_dims);
        let inv = 1.0 / (h * w) as f32;
        for s in 0..n {
            for ch in 0..c {
                let g = grad.data()[s * c + ch] * inv;
                let base = s * c * h * w + ch * h * w;
                for v in &mut gx.data_mut()[base..base + h * w] {
                    *v = g;
                }
            }
        }
        gx
    }

    fn describe(&self) -> String {
        "global_avg_pool".to_string()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Activations and reshape
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Clone)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self { mask: Vec::new() }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = x.clone();
        if train {
            self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        }
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn infer(&self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let mut out = x.clone();
        for v in out.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.numel(), self.mask.len(), "Relu::backward before forward(train)");
        let mut gx = grad.clone();
        for (v, &keep) in gx.data_mut().iter_mut().zip(self.mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        gx
    }

    fn describe(&self) -> String {
        "relu".to_string()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Reshapes `[N, ...]` to `[N, prod(...)]`.
#[derive(Clone)]
pub struct Flatten {
    in_dims: Vec<usize>,
}

impl Flatten {
    /// Creates the reshape layer.
    pub fn new() -> Self {
        Self { in_dims: Vec::new() }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_dims = x.dims().to_vec();
        }
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn infer(&self, x: &Tensor, _ctx: &mut ExecCtx) -> Tensor {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.reshape(&self.in_dims)
    }

    fn describe(&self) -> String {
        "flatten".to_string()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------------------

/// A chain of layers executed in order.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of contained layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Access to the contained layers.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Shared access to the contained layers (inference-side visitors).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.infer(&cur, ctx);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("sequential[{}]", parts.join(", "))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d input` for a layer with loss = sum(out).
    fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let grad_out = Tensor::full(out.dims(), 1.0);
        let gx = layer.backward(&grad_out);
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by((x.numel() / 17).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let op = layer.forward(&xp, false);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let om = layer.forward(&xm, false);
            let sp: f32 = op.data().iter().sum();
            let sm: f32 = om.data().iter().sum();
            let num = (sp - sm) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < tol,
                "grad mismatch at {}: numeric {} vs analytic {}",
                i,
                num,
                gx.data()[i]
            );
        }
    }

    fn ramp(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect())
    }

    #[test]
    fn conv_forward_known_values() {
        // 1x1x3x3 input, single 1-channel 3x3 filter of all ones, pad 1:
        // output at center = sum of all inputs.
        let mut conv = Conv2d::new(0, 1, 1, 3, 1, 1);
        conv.w.value = Tensor::full(&[1, 1, 3, 3], 1.0);
        conv.b.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 3, 3]);
        assert_eq!(y.at4(0, 0, 1, 1), 45.0);
        // corner sees only the 2x2 neighborhood
        assert_eq!(y.at4(0, 0, 0, 0), 1.0 + 2.0 + 4.0 + 5.0);
    }

    #[test]
    fn conv_stride_changes_output_size() {
        let conv = Conv2d::new(1, 3, 8, 3, 2, 1);
        assert_eq!(conv.out_hw(32, 32), (16, 16));
    }

    #[test]
    fn conv_input_gradient_matches_numeric() {
        let mut conv = Conv2d::new(2, 2, 3, 3, 1, 1);
        let x = ramp(&[2, 2, 5, 5]);
        check_input_grad(&mut conv, &x, 2e-2);
    }

    #[test]
    fn conv_weight_gradient_matches_numeric() {
        let mut conv = Conv2d::new(3, 2, 2, 3, 1, 1);
        let x = ramp(&[1, 2, 4, 4]);
        let out = conv.forward(&x, true);
        let grad_out = Tensor::full(out.dims(), 1.0);
        conv.backward(&grad_out);
        let analytic = conv.w.grad.clone();
        let eps = 1e-2f32;
        for i in (0..conv.w.value.numel()).step_by(5) {
            let orig = conv.w.value.data()[i];
            conv.w.value.data_mut()[i] = orig + eps;
            let sp: f32 = conv.forward(&x, false).data().iter().sum();
            conv.w.value.data_mut()[i] = orig - eps;
            let sm: f32 = conv.forward(&x, false).data().iter().sum();
            conv.w.value.data_mut()[i] = orig;
            let num = (sp - sm) / (2.0 * eps);
            assert!((num - analytic.data()[i]).abs() < 2e-2, "dW mismatch at {i}");
        }
    }

    #[test]
    fn linear_input_gradient_matches_numeric() {
        let mut fc = Linear::new(6, 4, 0);
        let x = ramp(&[3, 6]);
        check_input_grad(&mut fc, &x, 1e-2);
    }

    #[test]
    fn linear_forward_bias() {
        let mut fc = Linear::new(2, 2, 1);
        fc.w.value = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        fc.b.value = Tensor::from_vec(&[2], vec![10.0, 20.0]);
        let y = fc.forward(&Tensor::from_vec(&[1, 2], vec![3.0, 4.0]), false);
        assert_eq!(y.data(), &[13.0, 24.0]);
    }

    #[test]
    fn maxpool_forward_and_backward_route() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let gx = pool.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]));
        assert_eq!(gx.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_rectangular_window() {
        let mut pool = MaxPool2d::with_window(2, 1);
        let x = Tensor::from_vec(&[1, 1, 4, 1], vec![1.0, 2.0, 4.0, 3.0]);
        let y = pool.forward(&x, false);
        assert_eq!(y.dims(), &[1, 1, 2, 1]);
        assert_eq!(y.data(), &[2.0, 4.0]);
    }

    #[test]
    fn global_avg_pool_values_and_grad() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = gap.forward(&x, true);
        assert_eq!(y.data(), &[2.0, 15.0]);
        let gx = gap.backward(&Tensor::from_vec(&[1, 2], vec![2.0, 4.0]));
        assert_eq!(gx.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn relu_zeroes_negatives_and_grads() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let gx = relu.backward(&Tensor::full(&[4], 1.0));
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut flat = Flatten::new();
        let x = ramp(&[2, 3, 2, 2]);
        let y = flat.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let gx = flat.backward(&y);
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn sequential_chains_and_visits_params() {
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(4, 8, 0)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, 1)),
        ]);
        let y = net.forward(&ramp(&[2, 4]), true);
        assert_eq!(y.dims(), &[2, 2]);
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4); // two weights + two biases
    }

    #[test]
    fn infer_is_bitwise_identical_to_eval_forward() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(0, 2, 4, 3, 1, 1)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2)),
            Box::new(Conv2d::new(1, 4, 6, 3, 1, 1)),
            Box::new(Relu::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(6, 3, 2)),
        ]);
        // Install a mask on the first conv so the sparse dispatch path is
        // exercised on both sides.
        net.visit_params(&mut |p| {
            if p.name == "conv0.w" {
                let mask = Tensor::from_vec(
                    p.value.dims(),
                    (0..p.value.numel()).map(|i| (i % 3 != 0) as u32 as f32).collect(),
                );
                p.set_mask(mask);
            }
        });
        let x = ramp(&[3, 2, 8, 8]);
        let want = net.forward(&x, false);
        let mut ctx = ExecCtx::new();
        let got = net.infer(&x, &mut ctx);
        assert_eq!(want.dims(), got.dims());
        assert_eq!(want.data(), got.data(), "infer must match forward bitwise");
        // A recycled context must not change the result.
        let again = net.infer(&x, &mut ctx);
        assert_eq!(want.data(), again.data());
    }

    #[test]
    fn weight_override_matches_cloned_masked_model() {
        let base = Linear::new(6, 4, 9);
        let mask = Tensor::from_vec(&[4, 6], (0..24).map(|i| (i % 2 == 0) as u32 as f32).collect());
        let mut masked = base.clone();
        masked.visit_params(&mut |p| {
            if p.name.ends_with(".w") {
                p.set_mask(mask.clone());
            }
        });
        let x = ramp(&[2, 6]);
        let want = masked.forward(&x, false);

        let mut ctx = ExecCtx::new();
        let ov = crate::exec::WeightOverride::masked(9, &base.weight().value, &mask);
        ctx.push_override(ov);
        let got = base.infer(&x, &mut ctx);
        assert_eq!(want.data(), got.data(), "override path must match the cloned-model path");
    }

    #[test]
    fn param_clone_bumps_weight_clone_counter() {
        let before = super::weight_clone_count();
        let p = Param::new(0, "conv0.w", Tensor::zeros(&[2, 2]));
        let _c = p.clone();
        let b = Param::new(0, "conv0.b", Tensor::zeros(&[2]));
        let _c2 = b.clone();
        assert_eq!(
            super::weight_clone_count() - before,
            1,
            "weight clones count, bias clones do not"
        );
    }

    #[test]
    fn param_mask_zeroes_weights_and_density() {
        let mut p = Param::new(0, "t.w", Tensor::full(&[4], 2.0));
        let mask = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        p.set_mask(mask);
        assert_eq!(p.value.data(), &[2.0, 0.0, 2.0, 0.0]);
        assert!((p.density() - 0.5).abs() < 1e-9);
        p.grad = Tensor::full(&[4], 1.0);
        p.apply_mask();
        assert_eq!(p.grad.data(), &[1.0, 0.0, 1.0, 0.0]);
    }
}
