//! Runtime-dispatched AVX2/FMA kernel bodies for the hot GEMM loops.
//!
//! The scalar register-blocked kernels in [`crate::matmul`] and
//! [`crate::sparse`] remain the executable specification — bit-identical to
//! the original reference loops, tested bitwise. This module adds explicit
//! `core::arch` x86-64 SIMD bodies behind a process-wide dispatch level
//! ([`simd_level`]): auto-detected via `is_x86_feature_detected!("avx2")` +
//! `"fma"`, overridable with `IPRUNE_SIMD=0` (force scalar) / `IPRUNE_SIMD=1`
//! (SIMD when available) or programmatically with [`set_simd_level`].
//!
//! # Numerical contract
//!
//! The SIMD f32 kernels are **ULP-bounded, not bitwise**, against the scalar
//! spec: fused multiply-adds round once per product instead of twice, and
//! the dot-product kernels accumulate in eight partial lanes. They are
//! **branchless** — the scalar per-element zero-skip is dropped (skipping a
//! `±0.0` product is arithmetically a no-op on finite data, so only timing
//! changes; structured sparsity is the job of the BSR kernels). Inputs must
//! be finite: `0 × inf` would produce NaN where the skipping scalar spec
//! produces none. The training pipeline only feeds finite data.
//!
//! # Per-element operation contract (dense ≡ sparse under SIMD)
//!
//! The rest of the workspace relies on the block-sparse kernels being
//! bit-identical to the dense path on masked weights. That invariant is
//! preserved *within* the SIMD level by fixing, per output element, the
//! exact operation schedule — shared by the dense body and every sparse
//! body:
//!
//! - **axpy family** (`acc`, `at_b`): with `n8 = n - n % 8`, element
//!   `(i, j)` with `j < n8` is an FMA chain over ascending reduction index
//!   `p`; elements with `j >= n8` use separate multiply-then-add. The chain
//!   may round-trip through memory between block rows — that does not
//!   change the arithmetic.
//! - **dot family** (`a_bt`): with `k8 = k - k % 8`, the reduction is eight
//!   FMA lanes over 8-aligned chunks of `p < k8` (lane = `p % 8`), reduced
//!   by the fixed [`hsum8`] tree, plus a scalar multiply-add tail over
//!   `p >= k8`; the element update is `c += hsum + tail`.
//!
//! A sparse body that skips a dead block elides only `±0.0` products —
//! bitwise no-ops on chains that never hold `-0.0` (guaranteed by the
//! finite-data / zero-initialized-buffer contract already documented in
//! [`crate::sparse`]) — and, because the default host block width (16) is a
//! multiple of the 8-float lane width, alive strips preserve absolute lane
//! positions. Hence forced-SIMD dense and forced-SIMD sparse agree bit for
//! bit on pipeline data, at any thread count. (With non-default block
//! shapes whose width is not a multiple of 8 the sparse results are still
//! correct, merely not bit-equal to dense SIMD.)
//!
//! # Q15 integer GEMM
//!
//! [`q15_dot_i64`]'s SIMD counterpart in [`crate::qgemm`] uses
//! `_mm256_madd_epi16` (pairwise i16×i16→i32) widened to i64. Integer
//! addition is associative, so the SIMD variant is **exactly** equal to the
//! scalar spec provided one operand never holds `i16::MIN` (then no i32
//! pair can wrap); quantized weights produced by
//! [`crate::quant::QFormat::for_max_abs`] satisfy this by construction.
//!
//! # Q8 integer GEMM
//!
//! [`q8_dot_i32`]'s SIMD counterpart sign-extends i8 lanes to i16
//! (`_mm256_cvtepi8_epi16`) and accumulates `_mm256_madd_epi16` pair sums
//! in **wrapping** i32 lanes. Every pair sum is exact (≤ 2·2¹⁴) and
//! wrapping addition is associative and commutative mod 2³², so the SIMD
//! body equals the scalar spec for **all** inputs — the Q8 tier needs no
//! operand precondition at all.

use std::sync::atomic::{AtomicU8, Ordering};

/// Effective kernel dispatch level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Scalar register-blocked kernels (the executable spec).
    Scalar,
    /// AVX2 + FMA explicit-SIMD kernels.
    Avx2,
}

/// Process-wide dispatch level (0 = scalar, 1 = AVX2), seeded from
/// `IPRUNE_SIMD` and CPU detection on first use. Mirrors the
/// `IPRUNE_SPARSE` dispatch state in [`crate::sparse`].
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Whether this CPU supports the AVX2+FMA kernel bodies.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn level_bits(l: SimdLevel) -> u8 {
    match l {
        SimdLevel::Scalar => 0,
        SimdLevel::Avx2 => 1,
    }
}

/// Parses an `IPRUNE_SIMD` value: `Ok(false)` forces scalar, `Ok(true)`
/// requests SIMD (the default when unset). Anything else is `Err` — the
/// caller warns once and keeps the default rather than silently degrading.
fn parse_simd_env(val: Option<&str>) -> Result<bool, ()> {
    match val {
        None | Some("1") => Ok(true),
        Some("0") => Ok(false),
        Some(_) => Err(()),
    }
}

/// The current dispatch level. First call seeds it: `IPRUNE_SIMD=0` forces
/// scalar; `IPRUNE_SIMD=1` or unset selects AVX2 when the CPU supports it
/// (there is no way to force SIMD onto a CPU that lacks it — `1` on such a
/// host degrades to scalar, which the bench records as the effective
/// level). An unrecognized value keeps the auto-detected default and warns
/// once on stderr instead of silently falling back to scalar.
pub fn simd_level() -> SimdLevel {
    let bits = LEVEL.load(Ordering::Relaxed);
    if bits == u8::MAX {
        let env = std::env::var("IPRUNE_SIMD").ok();
        let want = parse_simd_env(env.as_deref()).unwrap_or_else(|()| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: unrecognized IPRUNE_SIMD value {:?} (expected \"0\" or \"1\"); \
                     keeping the auto-detected kernel dispatch level",
                    env.as_deref().unwrap_or("")
                );
            });
            true
        });
        let initial = if want && avx2_supported() { SimdLevel::Avx2 } else { SimdLevel::Scalar };
        // racing first calls agree on the env-derived value
        LEVEL.store(level_bits(initial), Ordering::Relaxed);
        return initial;
    }
    if bits == 1 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

/// Sets the process-wide dispatch level.
///
/// # Panics
///
/// Panics when asked for [`SimdLevel::Avx2`] on a CPU without AVX2+FMA —
/// callers probing both levels should gate on [`avx2_supported`].
pub fn set_simd_level(level: SimdLevel) {
    assert!(
        level != SimdLevel::Avx2 || avx2_supported(),
        "cannot force the AVX2 kernel path: CPU lacks avx2+fma"
    );
    LEVEL.store(level_bits(level), Ordering::Relaxed);
}

/// f32 lanes per vector operation at the current dispatch level.
pub fn lane_width() -> usize {
    match simd_level() {
        SimdLevel::Scalar => 1,
        SimdLevel::Avx2 => 8,
    }
}

/// Stable label of the current dispatch level for bench/CI records.
pub fn dispatch_label() -> &'static str {
    match simd_level() {
        SimdLevel::Scalar => "scalar",
        SimdLevel::Avx2 => "avx2",
    }
}

/// Scalar Q15 dot product in device arithmetic: every i16×i16 product is
/// widened to i64 before accumulation, matching the simulated accelerator's
/// accumulator exactly (and, per the module docs, the `madd`-based SIMD
/// variant whenever one operand avoids `i16::MIN`).
#[inline]
pub fn q15_dot_i64(a: &[i16], b: &[i16]) -> i64 {
    let mut acc = 0i64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += (x as i32 * y as i32) as i64;
    }
    acc
}

/// Scalar Q8 dot product: i8×i8 products in a **wrapping** i32
/// accumulator. Wrapping two's-complement addition is associative and
/// commutative mod 2³², so any reassociation — in particular the
/// lane-parallel SIMD body — is exactly equal for **all** inputs, with no
/// operand precondition (unlike the Q15 kernel). In practice the
/// accumulator never wraps on model data: `k` products of magnitude
/// ≤ 2¹⁴ stay far below 2³¹ for every layer in the zoo.
#[inline]
pub fn q8_dot_i32(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc = acc.wrapping_add(x as i32 * y as i32);
    }
    acc
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    //! The AVX2/FMA kernel bodies. Every `unsafe fn` here requires
    //! `avx2`+`fma` (checked by the dispatchers before any call) and
    //! in-bounds slice geometry (asserted by the public kernel entries).
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// One reduction range list: ascending, disjoint `(p0, p1)` cell
    /// ranges. Dense kernels pass a single `(0, k)`; sparse kernels pass
    /// the coalesced alive strips of a block row.
    pub(crate) type Segs<'a> = &'a [(usize, usize)];

    /// Fixed 8-lane horizontal-sum tree:
    /// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum8(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s3 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0b01));
        _mm_cvtss_f32(s3)
    }

    // -----------------------------------------------------------------
    // axpy family: c[i][j] updated in ascending-p FMA chains (vector
    // region j < n8) / multiply-add chains (scalar tail j >= n8).
    // -----------------------------------------------------------------

    /// Updates `rows_g` (1..=4) output rows whose left-operand value for
    /// output row `r` and reduction index `p` is
    /// `a[a_base + r*a_rstride + p*a_pstride]`; `c_row0` is the first
    /// updated row inside `c`. The reduction runs over `segs`.
    ///
    /// This is the shared body of `matmul_acc` (`a[m][k]`: rstride `k`,
    /// pstride 1), `matmul_at_b` (`a[k][m]` traversed transposed: rstride
    /// 1, pstride `m`) and their sparse-lhs counterparts — the callers
    /// differ only in `a` indexing and reduction segments.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; `a_base + r*a_rstride + p*a_pstride` must be in
    /// bounds for `r < rows_g` and every `p` in `segs`; `b` must hold
    /// `p*n + n` elements for every such `p`; `c` must hold
    /// `(c_row0 + rows_g) * n` elements.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn axpy_rows(
        a: &[f32],
        a_base: usize,
        a_rstride: usize,
        a_pstride: usize,
        rows_g: usize,
        b: &[f32],
        c: &mut [f32],
        c_row0: usize,
        n: usize,
        segs: Segs,
    ) {
        debug_assert!((1..=4).contains(&rows_g));
        let n8 = n & !7;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        if rows_g == 4 {
            // 4 x 16 register tile: eight FMA chains resident across the
            // whole reduction, two b loads + four broadcasts per p.
            let mut jp = 0usize;
            while jp + 16 <= n8 {
                let mut acc = [_mm256_setzero_ps(); 8];
                for r in 0..4 {
                    acc[2 * r] = _mm256_loadu_ps(cp.add((c_row0 + r) * n + jp));
                    acc[2 * r + 1] = _mm256_loadu_ps(cp.add((c_row0 + r) * n + jp + 8));
                }
                for &(p0, p1) in segs {
                    for p in p0..p1 {
                        let b0 = _mm256_loadu_ps(bp.add(p * n + jp));
                        let b1 = _mm256_loadu_ps(bp.add(p * n + jp + 8));
                        for r in 0..4 {
                            let av =
                                _mm256_set1_ps(*ap.add(a_base + r * a_rstride + p * a_pstride));
                            acc[2 * r] = _mm256_fmadd_ps(av, b0, acc[2 * r]);
                            acc[2 * r + 1] = _mm256_fmadd_ps(av, b1, acc[2 * r + 1]);
                        }
                    }
                }
                for r in 0..4 {
                    _mm256_storeu_ps(cp.add((c_row0 + r) * n + jp), acc[2 * r]);
                    _mm256_storeu_ps(cp.add((c_row0 + r) * n + jp + 8), acc[2 * r + 1]);
                }
                jp += 16;
            }
            if jp < n8 {
                let mut acc = [_mm256_setzero_ps(); 4];
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm256_loadu_ps(cp.add((c_row0 + r) * n + jp));
                }
                for &(p0, p1) in segs {
                    for p in p0..p1 {
                        let b0 = _mm256_loadu_ps(bp.add(p * n + jp));
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let av =
                                _mm256_set1_ps(*ap.add(a_base + r * a_rstride + p * a_pstride));
                            *accr = _mm256_fmadd_ps(av, b0, *accr);
                        }
                    }
                }
                for (r, &accr) in acc.iter().enumerate() {
                    _mm256_storeu_ps(cp.add((c_row0 + r) * n + jp), accr);
                }
            }
        } else {
            // edge rows: same chains, one row at a time
            for r in 0..rows_g {
                let mut jp = 0usize;
                while jp < n8 {
                    let mut acc = _mm256_loadu_ps(cp.add((c_row0 + r) * n + jp));
                    for &(p0, p1) in segs {
                        for p in p0..p1 {
                            let av =
                                _mm256_set1_ps(*ap.add(a_base + r * a_rstride + p * a_pstride));
                            acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(p * n + jp)), acc);
                        }
                    }
                    _mm256_storeu_ps(cp.add((c_row0 + r) * n + jp), acc);
                    jp += 8;
                }
            }
        }
        // scalar tail columns j >= n8: separate multiply-then-add chains
        for r in 0..rows_g {
            for j in n8..n {
                let mut t = *cp.add((c_row0 + r) * n + j);
                for &(p0, p1) in segs {
                    for p in p0..p1 {
                        t += *ap.add(a_base + r * a_rstride + p * a_pstride) * *bp.add(p * n + j);
                    }
                }
                *cp.add((c_row0 + r) * n + j) = t;
            }
        }
    }

    /// axpy-family update restricted to output *columns* `[j0, j1)`:
    /// vector FMA chains for `j < n8`, multiply-add for the `j >= n8`
    /// remainder, matching [`axpy_rows`]'s per-element schedule. Used by
    /// the sparse kernels whose index restricts output or rhs columns
    /// (`acc_sparse_rhs`, `at_b_sparse_out`). One left value `av` per call.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; `b_row` must hold `j1` elements and `c_row`
    /// `j1` elements; `j0 <= j1 <= n`.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn axpy_cols(
        av: f32,
        b_row: *const f32,
        c_row: *mut f32,
        j0: usize,
        j1: usize,
        n8: usize,
    ) {
        let vend = j1.min(n8);
        let avv = _mm256_set1_ps(av);
        let mut j = j0;
        while j + 8 <= vend {
            let cv = _mm256_loadu_ps(c_row.add(j));
            _mm256_storeu_ps(c_row.add(j), _mm256_fmadd_ps(avv, _mm256_loadu_ps(b_row.add(j)), cv));
            j += 8;
        }
        // sub-lane remainder inside the vector region (only reachable for
        // non-8-multiple block widths) and the true scalar tail
        while j < vend {
            *c_row.add(j) += av * *b_row.add(j);
            j += 1;
        }
        for j in j0.max(n8)..j1 {
            *c_row.add(j) += av * *b_row.add(j);
        }
    }

    // -----------------------------------------------------------------
    // dot family: c[i][j] += hsum8(lanes over 8-chunks of p) + scalar tail.
    // -----------------------------------------------------------------

    /// One dot-family element: reduction of `a_row · b_row` over `segs`
    /// with the fixed lane/tail schedule (`k8` = end of the vector
    /// region).
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; both rows must hold `p1` elements for every
    /// segment.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot_one(a_row: *const f32, b_row: *const f32, segs: Segs, k8: usize) -> f32 {
        let mut acc = _mm256_setzero_ps();
        let mut tail = 0.0f32;
        for &(p0, p1) in segs {
            let vend = p1.min(k8);
            let mut p = p0;
            while p + 8 <= vend {
                acc = _mm256_fmadd_ps(
                    _mm256_loadu_ps(a_row.add(p)),
                    _mm256_loadu_ps(b_row.add(p)),
                    acc,
                );
                p += 8;
            }
            while p < vend {
                tail += *a_row.add(p) * *b_row.add(p);
                p += 1;
            }
            for p in p0.max(k8)..p1 {
                tail += *a_row.add(p) * *b_row.add(p);
            }
        }
        hsum8(acc) + tail
    }

    /// Dot-family tile: `rows_g` (1..=4) a-rows × `cols_g` (1..=2) b-rows,
    /// each element following [`dot_one`]'s schedule; the 4×2 hot shape
    /// keeps eight lane accumulators resident.
    ///
    /// # Safety
    ///
    /// Requires avx2+fma; `a` must hold `(a_row0 + rows_g) * k` elements,
    /// `b` `(b_row0 + cols_g) * k`, and `c` must cover the updated tile.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn dot_tile(
        a: &[f32],
        a_row0: usize,
        rows_g: usize,
        b: &[f32],
        b_row0: usize,
        cols_g: usize,
        k: usize,
        segs: Segs,
        c: &mut [f32],
        c_row0: usize,
        c_col0: usize,
        n: usize,
    ) {
        debug_assert!((1..=4).contains(&rows_g) && (1..=2).contains(&cols_g));
        let k8 = k & !7;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        if rows_g == 4 && cols_g == 2 {
            let b0 = bp.add(b_row0 * k);
            let b1 = bp.add((b_row0 + 1) * k);
            let mut acc = [_mm256_setzero_ps(); 8];
            let mut tail = [0.0f32; 8];
            for &(p0, p1) in segs {
                let vend = p1.min(k8);
                let mut p = p0;
                while p + 8 <= vend {
                    let vb0 = _mm256_loadu_ps(b0.add(p));
                    let vb1 = _mm256_loadu_ps(b1.add(p));
                    for r in 0..4 {
                        let va = _mm256_loadu_ps(ap.add((a_row0 + r) * k + p));
                        acc[2 * r] = _mm256_fmadd_ps(va, vb0, acc[2 * r]);
                        acc[2 * r + 1] = _mm256_fmadd_ps(va, vb1, acc[2 * r + 1]);
                    }
                    p += 8;
                }
                while p < vend {
                    for r in 0..4 {
                        let av = *ap.add((a_row0 + r) * k + p);
                        tail[2 * r] += av * *b0.add(p);
                        tail[2 * r + 1] += av * *b1.add(p);
                    }
                    p += 1;
                }
                for p in p0.max(k8)..p1 {
                    for r in 0..4 {
                        let av = *ap.add((a_row0 + r) * k + p);
                        tail[2 * r] += av * *b0.add(p);
                        tail[2 * r + 1] += av * *b1.add(p);
                    }
                }
            }
            for r in 0..4 {
                for cj in 0..2 {
                    *cp.add((c_row0 + r) * n + c_col0 + cj) +=
                        hsum8(acc[2 * r + cj]) + tail[2 * r + cj];
                }
            }
        } else {
            for r in 0..rows_g {
                for cj in 0..cols_g {
                    *cp.add((c_row0 + r) * n + c_col0 + cj) +=
                        dot_one(ap.add((a_row0 + r) * k), bp.add((b_row0 + cj) * k), segs, k8);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Q15 integer GEMM body.
    // -----------------------------------------------------------------

    /// Q15 dot product via `_mm256_madd_epi16`: 16 i16 lanes per step,
    /// pairwise i32 products widened to four i64 lanes, scalar tail for
    /// `k % 16`. Exactly equal to [`super::q15_dot_i64`] whenever one
    /// operand is free of `i16::MIN` (see module docs).
    ///
    /// # Safety
    ///
    /// Requires avx2; both slices must hold `k` elements.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn q15_dot(a: *const i16, b: *const i16, k: usize) -> i64 {
        let k16 = k & !15;
        let mut acc_lo = _mm256_setzero_si256();
        let mut acc_hi = _mm256_setzero_si256();
        let mut p = 0usize;
        while p + 16 <= k16 {
            let va = _mm256_loadu_si256(a.add(p) as *const __m256i);
            let vb = _mm256_loadu_si256(b.add(p) as *const __m256i);
            let prod = _mm256_madd_epi16(va, vb); // 8 x i32 pair sums
            acc_lo = _mm256_add_epi64(acc_lo, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod)));
            acc_hi =
                _mm256_add_epi64(acc_hi, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1)));
            p += 16;
        }
        let sum = _mm256_add_epi64(acc_lo, acc_hi);
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, sum);
        let mut acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for q in k16..k {
            acc += (*a.add(q) as i32 * *b.add(q) as i32) as i64;
        }
        acc
    }

    // -----------------------------------------------------------------
    // Q8 integer GEMM body.
    // -----------------------------------------------------------------

    /// Q8 dot product: 32 i8 per load pair, sign-extended halves
    /// (`_mm256_cvtepi8_epi16`) multiplied pairwise into i32 by
    /// `_mm256_madd_epi16` (pair sums ≤ 2·2¹⁴ — never saturate), wrapping
    /// i32 lane accumulation, two independent accumulator sets unrolled
    /// over 64 i8 per iteration. Exactly equal to [`super::q8_dot_i32`]
    /// for **all** inputs: every madd is exact and wrapping i32 addition
    /// reassociates freely. (`_mm256_maddubs_epi16` is rejected for this
    /// kernel — its unsigned×signed pair sums saturate at i16 and would
    /// break the bitwise contract.)
    ///
    /// # Safety
    ///
    /// Requires avx2; both slices must hold `k` elements.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn q8_dot(a: *const i8, b: *const i8, k: usize) -> i32 {
        #[target_feature(enable = "avx2")]
        #[inline]
        unsafe fn madd32(a: *const i8, b: *const i8, acc: __m256i) -> __m256i {
            let va = _mm256_loadu_si256(a as *const __m256i);
            let vb = _mm256_loadu_si256(b as *const __m256i);
            let lo = _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb)),
            );
            let hi = _mm256_madd_epi16(
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1)),
            );
            _mm256_add_epi32(acc, _mm256_add_epi32(lo, hi))
        }
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut p = 0usize;
        while p + 64 <= k {
            acc0 = madd32(a.add(p), b.add(p), acc0);
            acc1 = madd32(a.add(p + 32), b.add(p + 32), acc1);
            p += 64;
        }
        if p + 32 <= k {
            acc0 = madd32(a.add(p), b.add(p), acc0);
            p += 32;
        }
        let sum = _mm256_add_epi32(acc0, acc1);
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, sum);
        let mut acc = 0i32;
        for &l in &lanes {
            acc = acc.wrapping_add(l);
        }
        for q in p..k {
            acc = acc.wrapping_add(*a.add(q) as i32 * *b.add(q) as i32);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_level_roundtrip() {
        let before = simd_level();
        set_simd_level(SimdLevel::Scalar);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        assert_eq!(lane_width(), 1);
        assert_eq!(dispatch_label(), "scalar");
        if avx2_supported() {
            set_simd_level(SimdLevel::Avx2);
            assert_eq!(simd_level(), SimdLevel::Avx2);
            assert_eq!(lane_width(), 8);
            assert_eq!(dispatch_label(), "avx2");
        }
        set_simd_level(before);
    }

    #[test]
    fn q15_dot_scalar_matches_wide_products() {
        let a = [30000i16, -30000, 12345, -1, 7];
        let b = [30000i16, 30000, -12345, i16::MIN, 3];
        let expect: i64 = a.iter().zip(b.iter()).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(q15_dot_i64(&a, &b), expect);
    }

    #[test]
    fn simd_env_values_parse_or_reject() {
        assert_eq!(parse_simd_env(None), Ok(true));
        assert_eq!(parse_simd_env(Some("1")), Ok(true));
        assert_eq!(parse_simd_env(Some("0")), Ok(false));
        assert_eq!(parse_simd_env(Some("2")), Err(()));
        assert_eq!(parse_simd_env(Some("avx2")), Err(()));
        assert_eq!(parse_simd_env(Some("")), Err(()));
    }

    #[test]
    fn q8_dot_scalar_wraps_like_wide_reference() {
        let a = [127i8, -128, 100, -1, 7];
        let b = [127i8, -128, -100, i8::MIN, 3];
        let expect: i64 = a.iter().zip(b.iter()).map(|(&x, &y)| x as i64 * y as i64).sum();
        assert_eq!(q8_dot_i32(&a, &b) as i64, expect, "no wrap at this size");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn q8_dot_avx2_matches_scalar_spec_on_full_range() {
        if !avx2_supported() {
            return;
        }
        // full i8 range on BOTH sides — the Q8 contract has no i8::MIN
        // exclusion (wrapping i32 accumulation reassociates exactly)
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 127, 130, 513] {
            let a: Vec<i8> = (0..len).map(|_| next() as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| next() as i8).collect();
            let expect = q8_dot_i32(&a, &b);
            let got = unsafe { avx2::q8_dot(a.as_ptr(), b.as_ptr(), len) };
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn q15_dot_avx2_matches_scalar_spec() {
        if !avx2_supported() {
            return;
        }
        // deterministic operands over the full safe range (one side
        // excludes i16::MIN, the precondition for madd exactness)
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for len in [0usize, 1, 7, 15, 16, 17, 31, 33, 64, 257] {
            let a: Vec<i16> = (0..len)
                .map(|_| ((next() as i32 % 32767).unsigned_abs() as i16).wrapping_sub(16383))
                .collect();
            let b: Vec<i16> = (0..len).map(|_| next() as i16).collect();
            let expect = q15_dot_i64(&a, &b);
            let got = unsafe { avx2::q15_dot(a.as_ptr(), b.as_ptr(), len) };
            assert_eq!(got, expect, "len {len}");
        }
    }
}
