//! Minimal trainable neural-network substrate for the iPrune reproduction.
//!
//! The iPrune paper performs its server-side work (training, sensitivity
//! analysis, fine-tuning) in an off-the-shelf deep-learning framework. This
//! crate is the from-scratch Rust equivalent: just enough of a tensor and
//! layer library to train the paper's three TinyML models, prune them, and
//! fine-tune them — plus the 16-bit fixed-point quantization used when a
//! model is deployed to the (simulated) MSP430 device.
//!
//! # Example
//!
//! ```
//! use iprune_tensor::{Tensor, layer::{Linear, Relu, Sequential, Layer}};
//! use iprune_tensor::optim::Sgd;
//! use iprune_tensor::loss::softmax_cross_entropy;
//!
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, 1)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 3, 2)),
//! ]);
//! let x = Tensor::zeros(&[2, 4]);
//! let logits = net.forward(&x, true);
//! let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
//! net.backward(&grad);
//! let mut opt = Sgd::new(0.01, 0.9);
//! opt.step(&mut net);
//! assert!(loss > 0.0);
//! ```

pub mod exec;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matmul;
pub mod metrics;
pub mod optim;
pub mod pack;
pub mod par;
pub mod pool;
pub mod qgemm;
pub mod quant;
pub mod simd;
pub mod sparse;
pub mod tensor;

pub use quant::{Q8Format, QFormat, QTensor};
pub use tensor::Tensor;
