//! Host-side block-sparse (BSR) execution for pruned weight matrices.
//!
//! Block pruning (the paper's guideline 3) kills whole rectangles of a
//! weight matrix at once, yet the dense kernels in [`crate::matmul`] still
//! *traverse* every pruned value and branch past it one element at a time.
//! At the paper's final densities (~20–35 %) most of that traversal is
//! wasted. This module mirrors the device-side `BsrMatrix` layout
//! (`iprune-hawaii`) on the host: a [`SparseIndex`] of block-row pointers
//! and block column indices built from a parameter's pruning mask, plus
//! sparse counterparts of the three hot GEMM kernels that iterate only the
//! alive blocks.
//!
//! One index serves every call site. The prune–retrain loop multiplies by a
//! weight matrix `W[m_w × k_w]` in six roles — forward (`W` on the left of
//! `matmul_acc`, or the transposed right operand of `matmul_a_bt`), input
//! gradients (`W` traversed transposed in `matmul_at_b`, or the right
//! operand of `matmul_acc`), and weight gradients (`W`-shaped *outputs* of
//! `matmul_a_bt` / `matmul_at_b`) — and all six traverse the same row-major
//! block grid, so the single mask-derived index covers them all.
//!
//! # Bit-identity
//!
//! The scalar references already define skip-zero semantics: ascending
//! reduction index `p`, skip exact-zero left operands. Masking multiplies a
//! pruned weight by `0.0`, leaving `±0.0`, and `v == 0.0` matches both
//! signs — so for the kernels with a reference zero-skip
//! ([`matmul_acc_sparse_lhs`], [`matmul_at_b_sparse_lhs`]) skipping a dead
//! block elides exactly the iterations the reference skips, and the alive
//! blocks keep the per-element test: results are *strictly* bit-identical
//! for any input.
//!
//! The remaining kernels rely on one IEEE-754 fact: a chain of additions
//! that starts at `+0.0` can never produce `-0.0` (only `(-0.0) + (-0.0)`
//! is `-0.0`; exact cancellation rounds to `+0.0`), so adding a `±0.0`
//! product never changes the accumulator's bits. Hence they are
//! bit-identical to the reference provided the inputs are finite (the
//! reference would turn `inf × pruned-zero` into NaN) and, for the
//! accumulate-into-`c` variants, no dead-block-covered `c` entry starts as
//! `-0.0` — both always true in the training pipeline, where activations
//! are finite and gradient/output buffers are zero-initialized.
//!
//! The output-sparse variants ([`matmul_a_bt_sparse_out`],
//! [`matmul_at_b_sparse_out`]) compute alive output blocks bit-identically
//! and leave dead entries untouched. They exist for weight-gradient
//! accumulation, where the optimizer multiplies the gradient by the mask
//! before use ([`crate::optim`]) — the dense path computes dead-block
//! gradients only to zero them, so restricting accumulation to alive
//! blocks is bit-identical end to end and makes that mask re-application
//! structurally redundant on the sparse path.
//!
//! # Thread-count invariance
//!
//! Like the dense kernels, parallelism splits the *output rows* over
//! [`crate::par`] workers; each element is produced by exactly one worker
//! with the same op order regardless of the split, so any `IPRUNE_THREADS`
//! gives identical bits.
//!
//! # SIMD dispatch
//!
//! Like the dense kernels, the public sparse entries dispatch on
//! [`crate::simd::simd_level`]; the scalar bodies stay directly callable as
//! `matmul_*_scalar` variants and remain the bitwise spec described above.
//! The AVX2 bodies follow the per-element operation contract in
//! [`crate::simd`], so *within* the SIMD level the dense/sparse bit-identity
//! story is unchanged: a sparse SIMD kernel elides only `±0.0` FMA no-ops
//! relative to its dense SIMD counterpart, and with the default host block
//! shape (width 16, a multiple of the 8-float lane) the dot-family lane
//! positions are preserved too.
//!
//! # Strip coalescing
//!
//! The index stores, besides the BSR `col_idx`, the *coalesced* alive-column
//! strips of each block row: runs of adjacent alive blocks merged into one
//! `(c0, c1)` cell range. All kernels iterate strips, so at moderate
//! sparsity (where most blocks survive and neighbors are usually alive) the
//! inner loops stream over long contiguous ranges instead of re-entering
//! the loop nest every 16 columns — this is what lifts the lhs-sparse
//! kernels above dense at ≤50 % sparsity. Merging adjacent segments keeps
//! the traversal order identical, so bit-identity is unaffected.

use crate::matmul::row_block;
use crate::par;
use crate::simd::{self, SimdLevel};
use iprune_obs::metrics::{self, Counter, Histogram};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

/// Host block height of a [`SparseIndex`]: matches the 4-row register quads
/// of the dense kernels, so worker row splits align with block rows.
pub const BLOCK_ROWS: usize = 4;

/// Host block width of a [`SparseIndex`]: wide enough that a dead block
/// skips a full cache line of traversal, narrow enough that the
/// accelerator-operation pruning blocks rarely leave a partially-dead host
/// block alive.
pub const BLOCK_COLS: usize = 16;

/// Alive-fraction threshold of the automatic dispatch: below this the
/// layers route GEMMs through the sparse kernels, at or above it they stay
/// dense. 0.75 keeps the first pruning iterations (≥ 30 % block sparsity)
/// on the sparse path while barely-pruned models avoid the index-walk
/// overhead.
pub const SPARSE_DENSITY_THRESHOLD: f64 = 0.75;

/// How layer GEMMs choose between the dense and sparse kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Density-threshold dispatch (the default): sparse below
    /// [`SPARSE_DENSITY_THRESHOLD`], dense otherwise.
    Auto,
    /// Always use the dense kernels (differential testing / benchmarking).
    ForceDense,
    /// Always use the sparse kernels when an index exists.
    ForceSparse,
}

/// Process-wide dispatch mode (0 = auto, 1 = dense, 2 = sparse), seeded
/// from `IPRUNE_SPARSE` (`0` forces dense, `1` forces sparse) on first use.
static MODE: AtomicU8 = AtomicU8::new(u8::MAX);

fn mode_bits(m: DispatchMode) -> u8 {
    match m {
        DispatchMode::Auto => 0,
        DispatchMode::ForceDense => 1,
        DispatchMode::ForceSparse => 2,
    }
}

/// Sets the process-wide GEMM dispatch mode.
pub fn set_dispatch_mode(mode: DispatchMode) {
    MODE.store(mode_bits(mode), Ordering::Relaxed);
}

/// The current GEMM dispatch mode.
pub fn dispatch_mode() -> DispatchMode {
    let bits = MODE.load(Ordering::Relaxed);
    if bits == u8::MAX {
        let initial = match std::env::var("IPRUNE_SPARSE").ok().as_deref() {
            Some("0") => DispatchMode::ForceDense,
            Some("1") => DispatchMode::ForceSparse,
            _ => DispatchMode::Auto,
        };
        // racing first calls agree on the env-derived value
        MODE.store(mode_bits(initial), Ordering::Relaxed);
        return initial;
    }
    match bits {
        1 => DispatchMode::ForceDense,
        2 => DispatchMode::ForceSparse,
        _ => DispatchMode::Auto,
    }
}

/// A block-sparse index over a pruning mask: which [`BLOCK_ROWS`] ×
/// [`BLOCK_COLS`] blocks of the `rows × cols` weight matrix still contain
/// any alive weight. Mirrors the device-side `BsrMatrix` layout (block-row
/// pointers plus block column indices, ascending within each block row)
/// but stores no values — the kernels read the weights from the dense
/// buffer, which is what keeps them bit-identical to the dense reference.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseIndex {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// `row_ptr[rb]..row_ptr[rb+1]` indexes the alive blocks of block-row
    /// `rb` in `col_idx`.
    row_ptr: Vec<u32>,
    /// Block column index of each alive block, ascending per block row.
    col_idx: Vec<u32>,
    /// Coalesced alive strips: runs of adjacent alive blocks merged into
    /// one `(c0, c1)` cell range (clamped to `cols`), ascending per block
    /// row. `strip_ptr[rb]..strip_ptr[rb+1]` indexes the strips of
    /// block-row `rb`.
    strips: Vec<(usize, usize)>,
    strip_ptr: Vec<u32>,
    /// Matrix cells covered by alive blocks (edge blocks clamped).
    alive_cells: usize,
}

impl SparseIndex {
    /// Builds the index from a flat row-major mask (`0.0` = pruned) with
    /// the default host block shape.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != rows * cols`.
    pub fn from_mask(mask: &[f32], rows: usize, cols: usize) -> Self {
        Self::with_blocks(mask, rows, cols, BLOCK_ROWS, BLOCK_COLS)
    }

    /// Builds the index with an explicit block shape (tests exercise
    /// non-default shapes; the layers always use [`Self::from_mask`]).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != rows * cols` or a block dimension is zero.
    pub fn with_blocks(mask: &[f32], rows: usize, cols: usize, br: usize, bc: usize) -> Self {
        assert!(br > 0 && bc > 0, "block dims must be positive");
        assert_eq!(mask.len(), rows * cols, "mask length");
        let rbs = rows.div_ceil(br);
        let cbs = cols.div_ceil(bc);
        let mut row_ptr = Vec::with_capacity(rbs + 1);
        let mut col_idx = Vec::new();
        let mut strips: Vec<(usize, usize)> = Vec::new();
        let mut strip_ptr = Vec::with_capacity(rbs + 1);
        let mut alive_cells = 0usize;
        row_ptr.push(0u32);
        strip_ptr.push(0u32);
        for rb in 0..rbs {
            let r1 = ((rb + 1) * br).min(rows);
            let row_strip0 = strips.len();
            for cb in 0..cbs {
                let c0 = cb * bc;
                let c1 = (c0 + bc).min(cols);
                let alive = (rb * br..r1)
                    .any(|r| mask[r * cols + c0..r * cols + c1].iter().any(|&v| v != 0.0));
                if alive {
                    col_idx.push(cb as u32);
                    alive_cells += (r1 - rb * br) * (c1 - c0);
                    let in_row = strips.len() > row_strip0;
                    match strips.last_mut() {
                        Some(last) if in_row && last.1 == c0 => last.1 = c1,
                        _ => strips.push((c0, c1)),
                    }
                }
            }
            row_ptr.push(col_idx.len() as u32);
            strip_ptr.push(strips.len() as u32);
        }
        Self { rows, cols, br, bc, row_ptr, col_idx, strips, strip_ptr, alive_cells }
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block height.
    pub fn block_height(&self) -> usize {
        self.br
    }

    /// Block width.
    pub fn block_width(&self) -> usize {
        self.bc
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.br)
    }

    /// Number of blocks in the full grid.
    pub fn total_blocks(&self) -> usize {
        self.rows.div_ceil(self.br) * self.cols.div_ceil(self.bc)
    }

    /// Number of alive blocks.
    pub fn alive_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Matrix cells covered by alive blocks.
    pub fn alive_cells(&self) -> usize {
        self.alive_cells
    }

    /// Fraction of matrix cells covered by alive blocks (1.0 for an empty
    /// matrix, which no kernel traverses anyway).
    pub fn alive_fraction(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            1.0
        } else {
            self.alive_cells as f64 / total as f64
        }
    }

    /// Whether the automatic dispatch would pick the sparse kernels.
    pub fn below_dispatch_threshold(&self) -> bool {
        self.alive_fraction() < SPARSE_DENSITY_THRESHOLD
    }

    /// Coalesced alive strips of block-row `rb` as `(col_start, col_end)`
    /// cell ranges, ascending and disjoint (adjacent alive blocks merged).
    pub(crate) fn strips_of(&self, rb: usize) -> &[(usize, usize)] {
        &self.strips[self.strip_ptr[rb] as usize..self.strip_ptr[rb + 1] as usize]
    }

    /// Alive cells of block-row `rb` as `(col_start, col_end)` column
    /// ranges, ascending (the coalesced strips).
    fn row_segments(&self, rb: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.strips_of(rb).iter().copied()
    }
}

/// Counts one sparse kernel call: per-kernel call counter, alive-MAC
/// histogram, and the process-wide skipped-MAC tally (the traversal the
/// dense path would have burned on dead blocks).
fn record_sparse(
    calls: &'static OnceLock<Arc<Counter>>,
    name: &'static str,
    alive: usize,
    skipped: usize,
) {
    static SKIPPED: OnceLock<Arc<Counter>> = OnceLock::new();
    static MACS: OnceLock<Arc<Histogram>> = OnceLock::new();
    calls.get_or_init(|| metrics::counter(name)).inc();
    SKIPPED.get_or_init(|| metrics::counter("gemm.sparse_skipped_macs")).add(skipped as u64);
    MACS.get_or_init(|| metrics::histogram("gemm.sparse_macs")).record(alive as u64);
}

/// `c[m][n] += a[m][k] * b[k][n]` with a block-sparse left operand:
/// [`crate::matmul::matmul_acc`] iterating only the alive blocks of `a`.
/// Strictly bit-identical to `matmul_acc_ref` (dead blocks hold only
/// `±0.0`, which the reference skips; alive blocks keep the per-element
/// skip test).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `m × k`.
pub fn matmul_acc_sparse_lhs(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    acc_sparse_lhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return acc_sparse_lhs_avx2(idx, a, b, c, m, k, n);
    }
    acc_sparse_lhs_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_acc_sparse_lhs`] — strictly bit-identical to
/// `matmul_acc_ref` regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_acc_sparse_lhs`].
pub fn matmul_acc_sparse_lhs_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    acc_sparse_lhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    acc_sparse_lhs_path(idx, a, b, c, m, k, n);
}

fn acc_sparse_lhs_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (m, k), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * n;
    record_sparse(&CALLS, "gemm.sparse.acc_lhs_calls", alive, m * k * n - alive);
}

fn acc_sparse_lhs_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = i0;
        while i < i0 + rows {
            let rb = i / idx.br;
            let blk_end = ((rb + 1) * idx.br).min(i0 + rows);
            for (p0, p1) in idx.row_segments(rb) {
                for p in p0..p1 {
                    let b_row = &b[p * n..(p + 1) * n];
                    for gi in i..blk_end {
                        let av = a[gi * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        let c_row = &mut c_block[(gi - i0) * n..(gi - i0 + 1) * n];
                        for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                            *c_v += av * b_v;
                        }
                    }
                }
            }
            i = blk_end;
        }
    });
}

/// AVX2 body of [`matmul_acc_sparse_lhs`]: each output row belongs to one
/// block row, so its whole FMA chain runs here over the alive strips
/// (ascending `p`), matching the dense AVX2 body minus `±0.0` no-ops.
#[cfg(target_arch = "x86_64")]
fn acc_sparse_lhs_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = i0;
        while i < i0 + rows {
            let rb = i / idx.br;
            let blk_end = ((rb + 1) * idx.br).min(i0 + rows);
            let segs = idx.strips_of(rb);
            if !segs.is_empty() {
                let mut g0 = i;
                while g0 < blk_end {
                    let g = (blk_end - g0).min(4);
                    // SAFETY: avx2+fma hold (dispatch level); strips lie in
                    // [0, k), rows in [0, m) by index construction.
                    unsafe {
                        simd::avx2::axpy_rows(a, g0 * k, k, 1, g, b, c_block, g0 - i0, n, segs);
                    }
                    g0 += g;
                }
            }
            i = blk_end;
        }
    });
}

/// `c[m][n] += a[m][k] * b[k][n]` with a block-sparse right operand (the
/// input-gradient GEMM of a fully-connected layer, where `b` is the weight
/// matrix). Each surviving axpy is restricted to the alive column segments
/// of `b`'s row `p`; see the module docs for the `±0.0` bit-identity
/// argument.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `k × n`.
pub fn matmul_acc_sparse_rhs(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    acc_sparse_rhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return acc_sparse_rhs_avx2(idx, a, b, c, m, k, n);
    }
    acc_sparse_rhs_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_acc_sparse_rhs`] — the bitwise spec behavior
/// regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_acc_sparse_rhs`].
pub fn matmul_acc_sparse_rhs_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    acc_sparse_rhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    acc_sparse_rhs_path(idx, a, b, c, m, k, n);
}

fn acc_sparse_rhs_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (k, n), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * m;
    record_sparse(&CALLS, "gemm.sparse.acc_rhs_calls", alive, m * k * n - alive);
}

fn acc_sparse_rhs_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        for ci in 0..rows {
            let a_row = &a[(i0 + ci) * k..(i0 + ci + 1) * k];
            let c_row = &mut c_block[ci * n..(ci + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (j0, j1) in idx.row_segments(p / idx.br) {
                    let b_seg = &b[p * n + j0..p * n + j1];
                    for (c_v, &b_v) in c_row[j0..j1].iter_mut().zip(b_seg.iter()) {
                        *c_v += av * b_v;
                    }
                }
            }
        }
    });
}

/// AVX2 body of [`matmul_acc_sparse_rhs`]: per output row, ascending-`p`
/// FMA updates restricted to the alive column strips of `b`'s row `p` —
/// the dense AVX2 chain minus `±0.0` no-ops (skipped `av == 0` products
/// are no-ops too).
#[cfg(target_arch = "x86_64")]
fn acc_sparse_rhs_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let n8 = n & !7;
        let bp = b.as_ptr();
        let cp = c_block.as_mut_ptr();
        for ci in 0..rows {
            let a_row = &a[(i0 + ci) * k..(i0 + ci + 1) * k];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for &(j0, j1) in idx.strips_of(p / idx.br) {
                    // SAFETY: avx2+fma hold (dispatch level); strips lie in
                    // [0, n) and `p < k` by index construction.
                    unsafe {
                        simd::avx2::axpy_cols(av, bp.add(p * n), cp.add(ci * n), j0, j1, n8);
                    }
                }
            }
        }
    });
}

/// `c[m][n] += a[k][m]ᵀ * b[k][n]` with a block-sparse `a` (the
/// input-gradient GEMM of a convolution, where `a` is the weight matrix
/// stored `[k][m]` and traversed transposed — the index is over `a` as
/// stored, shape `k × m`). Strictly bit-identical to `matmul_at_b_ref`.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `k × m`.
pub fn matmul_at_b_sparse_lhs(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    at_b_sparse_lhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return at_b_sparse_lhs_avx2(idx, a, b, c, m, k, n);
    }
    at_b_sparse_lhs_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_at_b_sparse_lhs`] — strictly bit-identical to
/// `matmul_at_b_ref` regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_at_b_sparse_lhs`].
pub fn matmul_at_b_sparse_lhs_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    at_b_sparse_lhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    at_b_sparse_lhs_path(idx, a, b, c, m, k, n);
}

fn at_b_sparse_lhs_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (k, m), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * n;
    record_sparse(&CALLS, "gemm.sparse.at_b_lhs_calls", alive, m * k * n - alive);
}

/// Scalar body: block-row outer loop so each alive strip is intersected
/// with the worker's row range once per block row (not once per `p` as the
/// pre-strip version did), then streams `idx.br` consecutive `b` rows over
/// it. For a fixed output row the updates still run in ascending-`p`
/// order (block rows ascend, `p` ascends within each), so bits are
/// unchanged.
fn at_b_sparse_lhs_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        for rb in 0..k.div_ceil(idx.br) {
            let p_hi = ((rb + 1) * idx.br).min(k);
            for (s0, s1) in idx.row_segments(rb) {
                let lo = s0.max(i0);
                let hi = s1.min(i0 + rows);
                for p in rb * idx.br..p_hi {
                    let b_row = &b[p * n..(p + 1) * n];
                    for i in lo..hi {
                        let av = a[p * m + i];
                        if av == 0.0 {
                            continue;
                        }
                        let c_row = &mut c_block[(i - i0) * n..(i - i0 + 1) * n];
                        for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                            *c_v += av * b_v;
                        }
                    }
                }
            }
        }
    });
}

/// AVX2 body of [`matmul_at_b_sparse_lhs`]: per block row of `a` (a `p`
/// range), the alive strips name output rows; their FMA chains resume from
/// memory in ascending block-row order, matching the dense AVX2 body minus
/// `±0.0` no-ops.
#[cfg(target_arch = "x86_64")]
fn at_b_sparse_lhs_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        for rb in 0..k.div_ceil(idx.br) {
            let pseg = [(rb * idx.br, ((rb + 1) * idx.br).min(k))];
            for &(s0, s1) in idx.strips_of(rb) {
                let lo = s0.max(i0);
                let hi = s1.min(i0 + rows);
                let mut g0 = lo;
                while g0 < hi {
                    let g = (hi - g0).min(4);
                    // SAFETY: avx2+fma hold (dispatch level); `p` ranges lie
                    // in [0, k), rows in [0, m) by index construction.
                    unsafe {
                        simd::avx2::axpy_rows(a, g0, 1, m, g, b, c_block, g0 - i0, n, &pseg);
                    }
                    g0 += g;
                }
            }
        }
    });
}

/// `c[m][n] += a[k][m]ᵀ * b[k][n]` computing only the alive blocks of a
/// weight-shaped output (the weight-gradient GEMM of a fully-connected
/// layer). Alive entries are bit-identical to the reference; dead entries
/// are left untouched — the optimizer masks them before use anyway.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `m × n`.
pub fn matmul_at_b_sparse_out(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    at_b_sparse_out_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return at_b_sparse_out_avx2(idx, a, b, c, m, k, n);
    }
    at_b_sparse_out_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_at_b_sparse_out`] — the bitwise spec behavior
/// regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_at_b_sparse_out`].
pub fn matmul_at_b_sparse_out_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    at_b_sparse_out_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    at_b_sparse_out_path(idx, a, b, c, m, k, n);
}

fn at_b_sparse_out_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (m, n), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * k;
    record_sparse(&CALLS, "gemm.sparse.at_b_out_calls", alive, m * k * n - alive);
}

fn at_b_sparse_out_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            for i in i0..i0 + rows {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c_block[(i - i0) * n..(i - i0 + 1) * n];
                for (j0, j1) in idx.row_segments(i / idx.br) {
                    for (c_v, &b_v) in c_row[j0..j1].iter_mut().zip(b_row[j0..j1].iter()) {
                        *c_v += av * b_v;
                    }
                }
            }
        }
    });
}

/// AVX2 body of [`matmul_at_b_sparse_out`]: ascending-`p` FMA updates
/// restricted to the alive output strips of each row; alive entries match
/// the dense AVX2 body, dead entries stay untouched.
#[cfg(target_arch = "x86_64")]
fn at_b_sparse_out_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let n8 = n & !7;
        let bp = b.as_ptr();
        let cp = c_block.as_mut_ptr();
        for p in 0..k {
            for i in i0..i0 + rows {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                for &(j0, j1) in idx.strips_of(i / idx.br) {
                    // SAFETY: avx2+fma hold (dispatch level); strips lie in
                    // [0, n), `p < k`, `i` in the block's rows.
                    unsafe {
                        simd::avx2::axpy_cols(av, bp.add(p * n), cp.add((i - i0) * n), j0, j1, n8);
                    }
                }
            }
        }
    });
}

/// `c[m][n] += a[m][k] * b[n][k]ᵀ` with a block-sparse right operand (the
/// forward GEMM of a fully-connected layer, where `b` is the weight matrix
/// stored `[n][k]` — index shape `n × k`). Each dot product runs over the
/// alive reduction segments of `b`'s row `j`; see the module docs for the
/// `±0.0` bit-identity argument.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `n × k`.
pub fn matmul_a_bt_sparse_rhs(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    a_bt_sparse_rhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return a_bt_sparse_rhs_avx2(idx, a, b, c, m, k, n);
    }
    a_bt_sparse_rhs_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_a_bt_sparse_rhs`] — the bitwise spec behavior
/// regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_a_bt_sparse_rhs`].
pub fn matmul_a_bt_sparse_rhs_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    a_bt_sparse_rhs_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    a_bt_sparse_rhs_path(idx, a, b, c, m, k, n);
}

fn a_bt_sparse_rhs_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (n, k), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * m;
    record_sparse(&CALLS, "gemm.sparse.a_bt_rhs_calls", alive, m * k * n - alive);
}

/// AVX2 body of [`matmul_a_bt_sparse_rhs`]: 4×2 tiles of eight-lane dot
/// accumulators over the alive reduction strips of each `b` block row.
/// Strips are [`BLOCK_COLS`]-aligned (a multiple of the 8-float lane), so
/// absolute lane positions — and hence bits — match the dense AVX2 body;
/// fully dead block rows are skipped (`+0.0` no-ops).
#[cfg(target_arch = "x86_64")]
fn a_bt_sparse_rhs_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let nbr = n.div_ceil(idx.br);
        let mut ci = 0;
        while ci < rows {
            let g = (rows - ci).min(4);
            for rb in 0..nbr {
                let segs = idx.strips_of(rb);
                if segs.is_empty() {
                    continue;
                }
                let j_end = ((rb + 1) * idx.br).min(n);
                let mut j = rb * idx.br;
                while j < j_end {
                    let cg = (j_end - j).min(2);
                    // SAFETY: avx2+fma hold (dispatch level); strips lie in
                    // [0, k), `j` rows in [0, n) by index construction.
                    unsafe {
                        simd::avx2::dot_tile(a, i0 + ci, g, b, j, cg, k, segs, c_block, ci, j, n);
                    }
                    j += cg;
                }
            }
            ci += g;
        }
    });
}

fn a_bt_sparse_rhs_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let nbr = n.div_ceil(idx.br);
        let mut ci = 0;
        while ci < rows {
            let ni = (rows - ci).min(4);
            for rb in 0..nbr {
                // a fully dead block row contributes exactly +0.0 per
                // output; under the no-negative-zero-in-`c` contract the
                // add is a bitwise no-op, so skip the block entirely
                if idx.row_ptr[rb] == idx.row_ptr[rb + 1] {
                    continue;
                }
                let j0 = rb * idx.br;
                let nj = idx.br.min(n - j0);
                if ni == 4 && nj == 4 {
                    // 4x4 register tile: sixteen independent accumulator
                    // chains, each still summing its alive products in
                    // ascending-p order (bit-identical to the reference)
                    let a0 = &a[(i0 + ci) * k..][..k];
                    let a1 = &a[(i0 + ci + 1) * k..][..k];
                    let a2 = &a[(i0 + ci + 2) * k..][..k];
                    let a3 = &a[(i0 + ci + 3) * k..][..k];
                    let b0 = &b[j0 * k..][..k];
                    let b1 = &b[(j0 + 1) * k..][..k];
                    let b2 = &b[(j0 + 2) * k..][..k];
                    let b3 = &b[(j0 + 3) * k..][..k];
                    let (mut t00, mut t01, mut t02, mut t03) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    let (mut t10, mut t11, mut t12, mut t13) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    let (mut t20, mut t21, mut t22, mut t23) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    let (mut t30, mut t31, mut t32, mut t33) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                    for (p0, p1) in idx.row_segments(rb) {
                        let (a0s, a1s, a2s, a3s) =
                            (&a0[p0..p1], &a1[p0..p1], &a2[p0..p1], &a3[p0..p1]);
                        let (b0s, b1s, b2s, b3s) =
                            (&b0[p0..p1], &b1[p0..p1], &b2[p0..p1], &b3[p0..p1]);
                        for p in 0..p1 - p0 {
                            let (x0, x1, x2, x3) = (a0s[p], a1s[p], a2s[p], a3s[p]);
                            let (y0, y1, y2, y3) = (b0s[p], b1s[p], b2s[p], b3s[p]);
                            t00 += x0 * y0;
                            t01 += x0 * y1;
                            t02 += x0 * y2;
                            t03 += x0 * y3;
                            t10 += x1 * y0;
                            t11 += x1 * y1;
                            t12 += x1 * y2;
                            t13 += x1 * y3;
                            t20 += x2 * y0;
                            t21 += x2 * y1;
                            t22 += x2 * y2;
                            t23 += x2 * y3;
                            t30 += x3 * y0;
                            t31 += x3 * y1;
                            t32 += x3 * y2;
                            t33 += x3 * y3;
                        }
                    }
                    c_block[ci * n + j0] += t00;
                    c_block[ci * n + j0 + 1] += t01;
                    c_block[ci * n + j0 + 2] += t02;
                    c_block[ci * n + j0 + 3] += t03;
                    c_block[(ci + 1) * n + j0] += t10;
                    c_block[(ci + 1) * n + j0 + 1] += t11;
                    c_block[(ci + 1) * n + j0 + 2] += t12;
                    c_block[(ci + 1) * n + j0 + 3] += t13;
                    c_block[(ci + 2) * n + j0] += t20;
                    c_block[(ci + 2) * n + j0 + 1] += t21;
                    c_block[(ci + 2) * n + j0 + 2] += t22;
                    c_block[(ci + 2) * n + j0 + 3] += t23;
                    c_block[(ci + 3) * n + j0] += t30;
                    c_block[(ci + 3) * n + j0 + 1] += t31;
                    c_block[(ci + 3) * n + j0 + 2] += t32;
                    c_block[(ci + 3) * n + j0 + 3] += t33;
                } else {
                    // ragged edge (short row chunk or narrow block row)
                    for ii in 0..ni {
                        let a_row = &a[(i0 + ci + ii) * k..][..k];
                        let mut acc = [0.0f32; 8];
                        debug_assert!(nj <= acc.len());
                        for (p0, p1) in idx.row_segments(rb) {
                            for p in p0..p1 {
                                let av = a_row[p];
                                for (jj, t) in acc[..nj].iter_mut().enumerate() {
                                    *t += av * b[(j0 + jj) * k + p];
                                }
                            }
                        }
                        for (jj, &t) in acc[..nj].iter().enumerate() {
                            c_block[(ci + ii) * n + j0 + jj] += t;
                        }
                    }
                }
            }
            ci += ni;
        }
    });
}

/// `c[m][n] += a[m][k] * b[n][k]ᵀ` computing only the alive blocks of a
/// weight-shaped output (the weight-gradient GEMM of a convolution). Alive
/// entries are bit-identical to the reference; dead entries are left
/// untouched — the optimizer masks them before use anyway.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)` or the
/// index shape is not `m × n`.
pub fn matmul_a_bt_sparse_out(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    a_bt_sparse_out_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return a_bt_sparse_out_avx2(idx, a, b, c, m, k, n);
    }
    a_bt_sparse_out_path(idx, a, b, c, m, k, n);
}

/// Scalar path of [`matmul_a_bt_sparse_out`] — the bitwise spec behavior
/// regardless of the SIMD dispatch level.
///
/// # Panics
///
/// Same contract as [`matmul_a_bt_sparse_out`].
pub fn matmul_a_bt_sparse_out_scalar(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    a_bt_sparse_out_checks(idx, a, b, c, m, k, n);
    if m == 0 || n == 0 {
        return;
    }
    a_bt_sparse_out_path(idx, a, b, c, m, k, n);
}

fn a_bt_sparse_out_checks(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    assert_eq!((idx.rows, idx.cols), (m, n), "index shape");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    let alive = idx.alive_cells * k;
    record_sparse(&CALLS, "gemm.sparse.a_bt_out_calls", alive, m * k * n - alive);
}

fn a_bt_sparse_out_path(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = i0;
        while i < i0 + rows {
            let rb = i / idx.br;
            let blk_end = ((rb + 1) * idx.br).min(i0 + rows);
            for (j0, j1) in idx.row_segments(rb) {
                for gi in i..blk_end {
                    let a_row = &a[gi * k..(gi + 1) * k];
                    for j in j0..j1 {
                        let b_row = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                            acc += x * y;
                        }
                        c_block[(gi - i0) * n + j] += acc;
                    }
                }
            }
            i = blk_end;
        }
    });
}

/// AVX2 body of [`matmul_a_bt_sparse_out`]: full-reduction 4×2 dot tiles
/// over the alive output strips of each block row; alive entries match the
/// dense AVX2 body bit for bit, dead entries stay untouched.
#[cfg(target_arch = "x86_64")]
fn a_bt_sparse_out_avx2(
    idx: &SparseIndex,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    let rows_per = row_block(m, k, n);
    let full = [(0usize, k)];
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = i0;
        while i < i0 + rows {
            let rb = i / idx.br;
            let blk_end = ((rb + 1) * idx.br).min(i0 + rows);
            for &(j0, j1) in idx.strips_of(rb) {
                let mut g0 = i;
                while g0 < blk_end {
                    let g = (blk_end - g0).min(4);
                    let mut j = j0;
                    while j < j1 {
                        let cg = (j1 - j).min(2);
                        // SAFETY: avx2+fma hold (dispatch level); strips lie
                        // in [0, n), rows in [0, m) by index construction.
                        unsafe {
                            simd::avx2::dot_tile(
                                a,
                                g0,
                                g,
                                b,
                                j,
                                cg,
                                k,
                                &full,
                                c_block,
                                g0 - i0,
                                j,
                                n,
                            );
                        }
                        j += cg;
                    }
                    g0 += g;
                }
            }
            i = blk_end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{matmul_a_bt_ref, matmul_acc_ref, matmul_at_b_ref};

    fn arb(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| ((i as f32 * 0.37 + seed).sin() * 3.0).round() / 4.0).collect()
    }

    /// A block mask over an `m × k` grid: block `(rb, cb)` of shape
    /// `br × bc` is dead when its hash is below `sparsity`.
    fn block_mask(m: usize, k: usize, br: usize, bc: usize, sparsity: f64, seed: u64) -> Vec<f32> {
        let mut mask = vec![1.0f32; m * k];
        for rb in 0..m.div_ceil(br) {
            for cb in 0..k.div_ceil(bc) {
                let h = (rb as u64 * 1_000_003 + cb as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed);
                if ((h >> 32) as f64 / (1u64 << 32) as f64) < sparsity {
                    for r in rb * br..((rb + 1) * br).min(m) {
                        for c in cb * bc..((cb + 1) * bc).min(k) {
                            mask[r * k + c] = 0.0;
                        }
                    }
                }
            }
        }
        mask
    }

    fn apply(w: &mut [f32], mask: &[f32]) {
        for (v, &m) in w.iter_mut().zip(mask.iter()) {
            *v *= m;
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn index_counts_alive_blocks_and_cells() {
        // 6x10 grid, 4x16 blocks -> 2 block rows x 1 block col
        let mut mask = vec![0.0f32; 60];
        mask[5] = 1.0; // row 0 -> block row 0 alive
        let idx = SparseIndex::from_mask(&mask, 6, 10);
        assert_eq!(idx.total_blocks(), 2);
        assert_eq!(idx.alive_blocks(), 1);
        assert_eq!(idx.alive_cells(), 4 * 10);
        assert!(idx.below_dispatch_threshold());
        let full = SparseIndex::from_mask(&vec![1.0; 60], 6, 10);
        assert_eq!(full.alive_blocks(), 2);
        assert_eq!(full.alive_cells(), 60);
        assert!((full.alive_fraction() - 1.0).abs() < 1e-12);
        assert!(!full.below_dispatch_threshold());
        let empty = SparseIndex::from_mask(&vec![0.0; 60], 6, 10);
        assert_eq!(empty.alive_blocks(), 0);
        assert_eq!(empty.alive_fraction(), 0.0);
    }

    #[test]
    fn negative_zero_mask_entries_count_as_dead() {
        let mask = vec![-0.0f32, 0.0, 0.0, 0.0];
        let idx = SparseIndex::from_mask(&mask, 2, 2);
        assert_eq!(idx.alive_blocks(), 0);
    }

    #[test]
    fn sparse_kernels_bitwise_match_reference_across_shapes() {
        let shapes = [(1, 1, 1), (4, 16, 4), (8, 32, 12), (5, 7, 9), (13, 33, 17), (23, 40, 19)];
        for &(m, k, n) in &shapes {
            for sparsity in [0.0, 0.5, 1.0] {
                let mask = block_mask(m, k, BLOCK_ROWS, BLOCK_COLS, sparsity, 7);
                let mut w = arb(m * k, 0.11);
                // exercise the per-element skip inside alive blocks too
                for (i, v) in w.iter_mut().enumerate() {
                    if i % 5 == 0 {
                        *v = 0.0;
                    }
                }
                apply(&mut w, &mask);
                let idx = SparseIndex::from_mask(&mask, m, k);
                let x = arb(k * n, 0.77);
                let c0 = arb(m * n, 0.42);

                // acc_lhs: w[m x k] on the left
                let mut c_ref = c0.clone();
                matmul_acc_ref(&w, &x, &mut c_ref, m, k, n);
                let mut c_sp = c0.clone();
                matmul_acc_sparse_lhs_scalar(&idx, &w, &x, &mut c_sp, m, k, n);
                assert_eq!(bits(&c_ref), bits(&c_sp), "acc_lhs {m}x{k}x{n} s={sparsity}");

                // at_b_lhs: w stored [m x k], traversed transposed -> output k x n...
                // here a = w as [k_gemm=m][m_gemm=k]
                let mut c_ref = arb(k * n, 0.33);
                let mut c_sp = c_ref.clone();
                let g = arb(m * n, 0.5);
                matmul_at_b_ref(&w, &g, &mut c_ref, k, m, n);
                matmul_at_b_sparse_lhs_scalar(&idx, &w, &g, &mut c_sp, k, m, n);
                assert_eq!(bits(&c_ref), bits(&c_sp), "at_b_lhs {m}x{k}x{n} s={sparsity}");

                // a_bt_rhs: w [m x k] as the transposed right operand
                let y = arb(n * k, 0.9);
                let mut c_ref = vec![0.0f32; n * m];
                let mut c_sp = c_ref.clone();
                matmul_a_bt_ref(&y, &w, &mut c_ref, n, k, m);
                matmul_a_bt_sparse_rhs_scalar(&idx, &y, &w, &mut c_sp, n, k, m);
                assert_eq!(bits(&c_ref), bits(&c_sp), "a_bt_rhs {m}x{k}x{n} s={sparsity}");
            }
        }
    }

    #[test]
    fn output_sparse_kernels_match_reference_on_alive_blocks() {
        let (m, k, n) = (11, 9, 37);
        let mask = block_mask(m, n, BLOCK_ROWS, BLOCK_COLS, 0.5, 3);
        let idx = SparseIndex::from_mask(&mask, m, n);
        let g = arb(k * m, 0.2); // [k][m] for at_b
        let x = arb(k * n, 0.6);
        let mut c_ref = vec![0.0f32; m * n];
        matmul_at_b_ref(&g, &x, &mut c_ref, m, k, n);
        let mut c_sp = vec![0.0f32; m * n];
        matmul_at_b_sparse_out_scalar(&idx, &g, &x, &mut c_sp, m, k, n);
        for (i, (&r, &s)) in c_ref.iter().zip(c_sp.iter()).enumerate() {
            if mask_covering(&idx, i / n, i % n) {
                assert_eq!(r.to_bits(), s.to_bits(), "alive entry {i}");
            } else {
                assert_eq!(s, 0.0, "dead entry {i} must stay untouched");
            }
        }

        let a = arb(m * k, 0.4);
        let bt = arb(n * k, 0.8);
        let mut c_ref = vec![0.0f32; m * n];
        matmul_a_bt_ref(&a, &bt, &mut c_ref, m, k, n);
        let mut c_sp = vec![0.0f32; m * n];
        matmul_a_bt_sparse_out_scalar(&idx, &a, &bt, &mut c_sp, m, k, n);
        for (i, (&r, &s)) in c_ref.iter().zip(c_sp.iter()).enumerate() {
            if mask_covering(&idx, i / n, i % n) {
                assert_eq!(r.to_bits(), s.to_bits(), "alive entry {i}");
            } else {
                assert_eq!(s, 0.0, "dead entry {i} must stay untouched");
            }
        }
    }

    /// Whether `(r, c)` lies in an alive block of `idx`.
    fn mask_covering(idx: &SparseIndex, r: usize, c: usize) -> bool {
        idx.row_segments(r / idx.br).any(|(c0, c1)| c >= c0 && c < c1)
    }

    #[test]
    fn acc_rhs_matches_reference_on_zeroed_output() {
        let (m, k, n) = (7, 12, 35);
        let mask = block_mask(k, n, BLOCK_ROWS, BLOCK_COLS, 0.6, 11);
        let mut w = arb(k * n, 0.15);
        apply(&mut w, &mask);
        let idx = SparseIndex::from_mask(&mask, k, n);
        let g = arb(m * k, 0.25);
        let mut c_ref = vec![0.0f32; m * n];
        matmul_acc_ref(&g, &w, &mut c_ref, m, k, n);
        let mut c_sp = vec![0.0f32; m * n];
        matmul_acc_sparse_rhs_scalar(&idx, &g, &w, &mut c_sp, m, k, n);
        assert_eq!(bits(&c_ref), bits(&c_sp));
    }

    #[test]
    fn sparse_kernels_are_thread_count_invariant() {
        let (m, k, n) = (61, 48, 47); // > parallel threshold, ragged rows
        let mask = block_mask(m, k, BLOCK_ROWS, BLOCK_COLS, 0.7, 5);
        let mut w = arb(m * k, 0.21);
        apply(&mut w, &mask);
        let idx = SparseIndex::from_mask(&mask, m, k);
        let x = arb(k * n, 0.63);
        crate::par::set_threads(1);
        let mut c1 = vec![0.25f32; m * n];
        matmul_acc_sparse_lhs_scalar(&idx, &w, &x, &mut c1, m, k, n);
        crate::par::set_threads(4);
        let mut c4 = vec![0.25f32; m * n];
        matmul_acc_sparse_lhs_scalar(&idx, &w, &x, &mut c4, m, k, n);
        crate::par::set_threads(0);
        assert_eq!(bits(&c1), bits(&c4));
    }

    #[test]
    fn dispatch_mode_roundtrip() {
        let before = dispatch_mode();
        set_dispatch_mode(DispatchMode::ForceDense);
        assert_eq!(dispatch_mode(), DispatchMode::ForceDense);
        set_dispatch_mode(DispatchMode::ForceSparse);
        assert_eq!(dispatch_mode(), DispatchMode::ForceSparse);
        set_dispatch_mode(before);
    }

    #[test]
    #[should_panic(expected = "index shape")]
    fn shape_mismatch_panics() {
        let idx = SparseIndex::from_mask(&[1.0; 4], 2, 2);
        let mut c = vec![0.0; 9];
        matmul_acc_sparse_lhs_scalar(&idx, &[1.0; 9], &[1.0; 9], &mut c, 3, 3, 3);
    }
}
