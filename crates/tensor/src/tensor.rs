//! A dense, row-major, f32 tensor.
//!
//! Deliberately minimal: the iPrune pipeline only needs up-to-4-D tensors,
//! elementwise arithmetic, and the shaped access patterns used by the layer
//! implementations in [`crate::layer`].

use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// The dimension list is dynamic (1-D to 4-D in practice). Indexing helpers
/// are provided for the common NCHW layouts used by the layers.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a dimension list and a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = dims.iter().product();
        assert_eq!(data.len(), numel, "data length {} does not match dims {:?}", data.len(), dims);
        Self { dims: dims.to_vec(), data }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let numel: usize = dims.iter().product();
        Self { dims: dims.to_vec(), data: vec![0.0; numel] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let numel: usize = dims.iter().product();
        Self { dims: dims.to_vec(), data: vec![value; numel] }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data but new dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let numel: usize = dims.iter().product();
        assert_eq!(numel, self.data.len(), "reshape {:?} -> {:?}", self.dims, dims);
        Tensor { dims: dims.to_vec(), data: self.data.clone() }
    }

    /// Flat offset of `[n, c, h, w]` in an NCHW 4-D tensor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the tensor is not 4-D or an index is out
    /// of range.
    #[inline]
    pub fn offset4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.dims.len(), 4);
        debug_assert!(n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3]);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Value at `[n, c, h, w]`.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset4(n, c, h, w)]
    }

    /// Flat offset of `[r, c]` in a 2-D tensor.
    #[inline]
    pub fn offset2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.dims.len(), 2);
        r * self.dims[1] + c
    }

    /// Value at `[r, c]`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        self.data[self.offset2(r, c)]
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.dims, other.dims);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Elementwise in-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Elementwise in-place multiplication.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.dims, other.dims);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Maximum absolute value (0.0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Root mean square of all elements (0.0 for an empty tensor).
    ///
    /// This is the importance metric the paper uses for weight blocks
    /// (Section III-D, citing Scalpel).
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let ss: f64 = self.data.iter().map(|&x| (x as f64) * (x as f64)).sum();
        (ss / self.data.len() as f64).sqrt() as f32
    }

    /// Number of exactly-zero elements.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(dims={:?}", self.dims)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{:.4}, {:.4}, …; {}])", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    #[allow(clippy::identity_op)] // spelled-out stride formula documents the layout
    fn offset4_nchw() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.offset4(0, 0, 0, 0), 0);
        assert_eq!(t.offset4(1, 2, 3, 4), ((1 * 3 + 2) * 4 + 3) * 5 + 4);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[4]);
        assert_eq!(r.dims(), &[4]);
        assert_eq!(r.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 11.0, 16.5]);
        a.mul_assign(&b);
        assert_eq!(a.data(), &[55.0, 220.0, 495.0]);
    }

    #[test]
    fn rms_and_max_abs() {
        let t = Tensor::from_vec(&[4], vec![1.0, -1.0, 1.0, -1.0]);
        assert!((t.rms() - 1.0).abs() < 1e-6);
        assert_eq!(t.max_abs(), 1.0);
        let z = Tensor::zeros(&[0]);
        assert_eq!(z.rms(), 0.0);
    }

    #[test]
    fn count_zeros_counts() {
        let t = Tensor::from_vec(&[4], vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(t.count_zeros(), 2);
    }
}
