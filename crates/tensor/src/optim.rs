//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by visit order, which is stable
//! for a fixed network structure. After every update the parameter's pruning
//! mask (if any) is re-applied so pruned weights stay at exactly zero.

use crate::layer::{Layer, Param};

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `net` and zeroes the
    /// gradients.
    pub fn step(&mut self, net: &mut dyn Layer) {
        let mut idx = 0;
        let (lr, momentum) = (self.lr, self.momentum);
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p: &mut Param| {
            if velocity.len() == idx {
                velocity.push(vec![0.0; p.value.numel()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.value.numel(), "parameter set changed between steps");
            p.apply_mask();
            for ((val, g), vel) in
                p.value.data_mut().iter_mut().zip(p.grad.data().iter()).zip(v.iter_mut())
            {
                *vel = momentum * *vel + g;
                *val -= lr * *vel;
            }
            p.apply_mask();
            p.zero_grad();
            idx += 1;
        });
    }
}

/// Adam optimizer.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual defaults for the betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Applies one update step to every parameter of `net` and zeroes the
    /// gradients.
    pub fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t);
        let bc2 = 1.0 - b2.powi(t);
        let mut idx = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        net.visit_params(&mut |p: &mut Param| {
            if ms.len() == idx {
                ms.push(vec![0.0; p.value.numel()]);
                vs.push(vec![0.0; p.value.numel()]);
            }
            p.apply_mask();
            let (m, v) = (&mut ms[idx], &mut vs[idx]);
            for (((val, g), mi), vi) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * g;
                *vi = b2 * *vi + (1.0 - b2) * g * g;
                let mh = *mi / bc1;
                let vh = *vi / bc2;
                *val -= lr * mh / (vh.sqrt() + eps);
            }
            p.apply_mask();
            p.zero_grad();
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Linear, Sequential};
    use crate::loss::softmax_cross_entropy;
    use crate::Tensor;

    fn toy_net() -> Sequential {
        Sequential::new(vec![Box::new(Linear::new(2, 2, 0))])
    }

    fn toy_batch() -> (Tensor, Vec<usize>) {
        (Tensor::from_vec(&[4, 2], vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.1, 0.9]), vec![0, 0, 1, 1])
    }

    fn train_loss(opt_kind: &str) -> (f32, f32) {
        let mut net = toy_net();
        let (x, t) = toy_batch();
        let mut sgd = Sgd::new(0.5, 0.9);
        let mut adam = Adam::new(0.05);
        let (first, _) = {
            let y = net.forward(&x, true);
            softmax_cross_entropy(&y, &t)
        };
        let mut last = first;
        for _ in 0..50 {
            let y = net.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&y, &t);
            net.backward(&grad);
            match opt_kind {
                "sgd" => sgd.step(&mut net),
                _ => adam.step(&mut net),
            }
            last = loss;
        }
        (first, last)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (first, last) = train_loss("sgd");
        assert!(last < first * 0.5, "sgd failed to learn: {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (first, last) = train_loss("adam");
        assert!(last < first * 0.5, "adam failed to learn: {first} -> {last}");
    }

    #[test]
    fn masked_weights_stay_zero_through_training() {
        let mut net = toy_net();
        let mask = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        net.visit_params(&mut |p| {
            if p.name.ends_with(".w") {
                p.set_mask(mask.clone());
            }
        });
        let (x, t) = toy_batch();
        let mut opt = Sgd::new(0.5, 0.9);
        for _ in 0..20 {
            let y = net.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&y, &t);
            net.backward(&grad);
            opt.step(&mut net);
        }
        net.visit_params(&mut |p| {
            if p.name.ends_with(".w") {
                assert_eq!(p.value.data()[1], 0.0);
                assert_eq!(p.value.data()[2], 0.0);
                assert_ne!(p.value.data()[0], 0.0);
            }
        });
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut net = toy_net();
        let (x, t) = toy_batch();
        let y = net.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &t);
        net.backward(&grad);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut net);
        net.visit_params(&mut |p| {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        });
    }
}
