//! im2col packing kernels behind the runtime SIMD dispatch level.
//!
//! Convolution on this host is im2col + GEMM, in two layouts:
//!
//! * **row-major** (`[cin*kh*kw, ho*wo]`, f32) — the training/inference
//!   path in [`crate::layer::Conv2d`], consumed by the axpy-family GEMMs;
//! * **patch-major** (`[ho*wo, cin*kh*kw]`, any element type) — one
//!   k-contiguous patch per output position, the transposed layout the
//!   dot-form Q15/Q8 integer GEMMs ([`crate::qgemm`]) consume.
//!
//! Packing is pure data movement, so unlike the f32 GEMMs there is no
//! rounding question: the optimized bodies are **bitwise equal to the
//! scalar specs for every input**, at every dispatch level. The specs
//! ([`im2col_f32_scalar`], [`im2col_patches_scalar`]) are the original
//! per-element loops (bounds check per element; the patch-major spec
//! recovers `(c, ky, kx)` by div/mod) and remain the executable reference.
//! The dispatched bodies decompose each row into its three runs —
//! left padding, a contiguous (row-major, stride 1) or constant-offset
//! in-bounds run, right padding — eliminating the per-element branches
//! and divisions; the row-major f32 body copies the in-bounds run with
//! explicit 8-lane AVX2 loads/stores at [`SimdLevel::Avx2`].
//!
//! Keeping both layouts behind [`crate::simd::simd_level`] means the
//! end-to-end cost of packing is measurable as scalar-vs-AVX2 in the perf
//! bench, with byte-identical outputs across levels (asserted in CI).

use crate::simd::{self, SimdLevel};

/// Geometry of one convolution's packing problem (one sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub cin: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (shared by both axes).
    pub stride: usize,
    /// Zero padding above/below.
    pub pad_h: usize,
    /// Zero padding left/right.
    pub pad_w: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvShape {
    /// GEMM reduction depth `cin * kh * kw`.
    pub fn k(&self) -> usize {
        self.cin * self.kh * self.kw
    }

    /// Number of output positions `out_h * out_w`.
    pub fn out_hw(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Elements in the packed matrix (either layout).
    pub fn col_len(&self) -> usize {
        self.k() * self.out_hw()
    }

    /// Elements in one input sample `cin * in_h * in_w`.
    pub fn in_len(&self) -> usize {
        self.cin * self.in_h * self.in_w
    }
}

/// Element types the packing kernels move. Packing never does arithmetic on
/// the values, so the only requirement is a zero for the padding region.
pub trait PackElem: Copy {
    /// The padding value.
    const ZERO: Self;
}

impl PackElem for f32 {
    const ZERO: Self = 0.0;
}
impl PackElem for i16 {
    const ZERO: Self = 0;
}
impl PackElem for i8 {
    const ZERO: Self = 0;
}

fn assert_geometry<T>(src: &[T], s: &ConvShape, col: &[T]) {
    assert_eq!(src.len(), s.in_len(), "im2col src length");
    assert_eq!(col.len(), s.col_len(), "im2col col length");
    assert!(s.stride > 0, "im2col stride");
    assert_eq!(s.out_h, (s.in_h + 2 * s.pad_h - s.kh) / s.stride + 1, "im2col out_h");
    assert_eq!(s.out_w, (s.in_w + 2 * s.pad_w - s.kw) / s.stride + 1, "im2col out_w");
}

// ---------------------------------------------------------------------
// Row-major layout: col[(c*kh*kw + ky*kw + kx) * out_hw + oy*out_w + ox]
// ---------------------------------------------------------------------

/// Row-major f32 im2col for one `[cin, in_h, in_w]` sample, dispatched on
/// the process SIMD level. Bitwise equal to [`im2col_f32_scalar`] for every
/// input.
///
/// # Panics
///
/// Panics if slice lengths or the output size disagree with `s`.
pub fn im2col_f32(src: &[f32], s: &ConvShape, col: &mut [f32]) {
    assert_geometry(src, s, col);
    match simd::simd_level() {
        SimdLevel::Scalar => im2col_f32_scalar_body(src, s, col),
        SimdLevel::Avx2 => im2col_rows_runs(src, s, col, copy_run_f32_avx2),
    }
}

/// The scalar spec: the original per-element loop with a bounds check per
/// element — identical to the dispatched entry, kept as the executable
/// reference.
///
/// # Panics
///
/// Panics if slice lengths or the output size disagree with `s`.
pub fn im2col_f32_scalar(src: &[f32], s: &ConvShape, col: &mut [f32]) {
    assert_geometry(src, s, col);
    im2col_f32_scalar_body(src, s, col);
}

fn im2col_f32_scalar_body(src: &[f32], s: &ConvShape, col: &mut [f32]) {
    let khw = s.kh * s.kw;
    let hw_out = s.out_hw();
    for c in 0..s.cin {
        for ky in 0..s.kh {
            for kx in 0..s.kw {
                let row = (c * khw + ky * s.kw + kx) * hw_out;
                for oy in 0..s.out_h {
                    let iy = (oy * s.stride + ky) as isize - s.pad_h as isize;
                    let base = row + oy * s.out_w;
                    if iy < 0 || iy >= s.in_h as isize {
                        col[base..base + s.out_w].iter_mut().for_each(|v| *v = 0.0);
                        continue;
                    }
                    for ox in 0..s.out_w {
                        let ix = (ox * s.stride + kx) as isize - s.pad_w as isize;
                        col[base + ox] = if ix < 0 || ix >= s.in_w as isize {
                            0.0
                        } else {
                            src[(c * s.in_h + iy as usize) * s.in_w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// The valid output-position range `[lo, hi)` along one axis: positions `o`
/// with `0 <= o*stride + koff - pad < extent`. Pure integer arithmetic —
/// this is the run decomposition that replaces the per-element checks.
#[inline]
fn valid_range(
    out: usize,
    stride: usize,
    koff: usize,
    pad: usize,
    extent: usize,
) -> (usize, usize) {
    let lo = pad.saturating_sub(koff).div_ceil(stride).min(out);
    let hi =
        if extent + pad > koff { ((extent + pad - koff - 1) / stride + 1).min(out) } else { 0 };
    (lo, hi.max(lo))
}

/// Row-major body shared by both dispatch levels' fast path: per
/// `(c, ky, kx)` row, each output row is left-pad zeros, one in-bounds run,
/// right-pad zeros. At stride 1 the in-bounds run is a contiguous copy
/// (performed by `copy_run`); larger strides gather with a precomputed
/// offset and no per-element branch.
fn im2col_rows_runs(src: &[f32], s: &ConvShape, col: &mut [f32], copy_run: fn(&[f32], &mut [f32])) {
    let khw = s.kh * s.kw;
    let hw_out = s.out_hw();
    for c in 0..s.cin {
        for ky in 0..s.kh {
            for kx in 0..s.kw {
                let row = (c * khw + ky * s.kw + kx) * hw_out;
                let (lo, hi) = valid_range(s.out_w, s.stride, kx, s.pad_w, s.in_w);
                for oy in 0..s.out_h {
                    let iy = (oy * s.stride + ky) as isize - s.pad_h as isize;
                    let base = row + oy * s.out_w;
                    let dst = &mut col[base..base + s.out_w];
                    if iy < 0 || iy >= s.in_h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    let src_row = (c * s.in_h + iy as usize) * s.in_w;
                    // first in-bounds input column: lo*stride + kx - pad_w >= 0
                    let ix0 = lo * s.stride + kx - s.pad_w;
                    if s.stride == 1 {
                        copy_run(&src[src_row + ix0..src_row + ix0 + (hi - lo)], &mut dst[lo..hi]);
                    } else {
                        for (d, ox) in dst[lo..hi].iter_mut().zip(lo..) {
                            *d = src[src_row + ix0 + (ox - lo) * s.stride];
                        }
                    }
                }
            }
        }
    }
}

/// Contiguous-run copy with explicit 8-lane AVX2 vectors (scalar tail).
/// Falls back to `copy_from_slice` off x86-64 — the Avx2 level is
/// unreachable there, but the body must still compile.
fn copy_run_f32_avx2(src: &[f32], dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: dispatch only selects this body when avx2 is present;
        // both slices have equal length (callers pass matched runs).
        unsafe { copy_f32_lanes(src, dst) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dst.copy_from_slice(src);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn copy_f32_lanes(src: &[f32], dst: &mut [f32]) {
    use core::arch::x86_64::*;
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let n8 = n & !7;
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        _mm256_storeu_ps(dp.add(i), _mm256_loadu_ps(sp.add(i)));
        i += 8;
    }
    for j in n8..n {
        *dp.add(j) = *sp.add(j);
    }
}

// ---------------------------------------------------------------------
// Patch-major layout: col[(oy*out_w + ox) * k + c*kh*kw + ky*kw + kx]
// ---------------------------------------------------------------------

/// Patch-major (transposed) im2col for one `[cin, in_h, in_w]` sample,
/// dispatched on the process SIMD level: one k-contiguous patch per output
/// position, the layout the dot-form integer GEMMs consume. Bitwise equal
/// to [`im2col_patches_scalar`] for every input.
///
/// # Panics
///
/// Panics if slice lengths or the output size disagree with `s`.
pub fn im2col_patches<T: PackElem>(src: &[T], s: &ConvShape, col: &mut [T]) {
    assert_geometry(src, s, col);
    match simd::simd_level() {
        SimdLevel::Scalar => im2col_patches_scalar_body(src, s, col),
        SimdLevel::Avx2 => im2col_patches_runs(src, s, col),
    }
}

/// The patch-major scalar spec: per-element `(c, ky, kx)` recovery by
/// div/mod with a bounds check per element — the original
/// `qeval::forward_q15` gather, kept as the executable reference.
///
/// # Panics
///
/// Panics if slice lengths or the output size disagree with `s`.
pub fn im2col_patches_scalar<T: PackElem>(src: &[T], s: &ConvShape, col: &mut [T]) {
    assert_geometry(src, s, col);
    im2col_patches_scalar_body(src, s, col);
}

fn im2col_patches_scalar_body<T: PackElem>(src: &[T], s: &ConvShape, col: &mut [T]) {
    let k = s.k();
    let khw = s.kh * s.kw;
    for (j, patch) in col.chunks_exact_mut(k).enumerate() {
        let (oy, ox) = (j / s.out_w, j % s.out_w);
        for (ki, out) in patch.iter_mut().enumerate() {
            let c = ki / khw;
            let (ky, kx) = ((ki % khw) / s.kw, ki % s.kw);
            let iy = (oy * s.stride + ky) as isize - s.pad_h as isize;
            let ix = (ox * s.stride + kx) as isize - s.pad_w as isize;
            *out = if iy >= 0 && iy < s.in_h as isize && ix >= 0 && ix < s.in_w as isize {
                src[(c * s.in_h + iy as usize) * s.in_w + ix as usize]
            } else {
                T::ZERO
            };
        }
    }
}

/// Patch-major fast body: for a fixed output position the `kx` axis is
/// contiguous in both the patch and the input row, so every `(c, ky)` row
/// of the patch is left-pad zeros + one `copy_from_slice` + right-pad
/// zeros; no divisions, no per-element checks. (The destination stride
/// between consecutive output positions is `k`, so there is no wide-vector
/// axis here — the win is the run decomposition, and it rides the same
/// dispatch level so the scalar spec stays the reference.)
fn im2col_patches_runs<T: PackElem>(src: &[T], s: &ConvShape, col: &mut [T]) {
    let k = s.k();
    let khw = s.kh * s.kw;
    let mut j = 0usize;
    for oy in 0..s.out_h {
        for ox in 0..s.out_w {
            let patch = &mut col[j * k..(j + 1) * k];
            j += 1;
            // valid kx range for this ox: 0 <= ox*stride + kx - pad_w < in_w
            let x0 = ox * s.stride;
            let kx_lo = s.pad_w.saturating_sub(x0).min(s.kw);
            let kx_hi = if s.in_w + s.pad_w > x0 { (s.in_w + s.pad_w - x0).min(s.kw) } else { 0 };
            let kx_hi = kx_hi.max(kx_lo);
            // exact when the run is non-empty; an empty run never reads
            let ix0 = (x0 + kx_lo).saturating_sub(s.pad_w);
            for c in 0..s.cin {
                for ky in 0..s.kh {
                    let iy = (oy * s.stride + ky) as isize - s.pad_h as isize;
                    let dst = &mut patch[c * khw + ky * s.kw..c * khw + (ky + 1) * s.kw];
                    if iy < 0 || iy >= s.in_h as isize {
                        dst.fill(T::ZERO);
                        continue;
                    }
                    dst[..kx_lo].fill(T::ZERO);
                    dst[kx_hi..].fill(T::ZERO);
                    if kx_hi > kx_lo {
                        let src_row = (c * s.in_h + iy as usize) * s.in_w;
                        dst[kx_lo..kx_hi]
                            .copy_from_slice(&src[src_row + ix0..src_row + ix0 + (kx_hi - kx_lo)]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(
        cin: usize,
        (kh, kw): (usize, usize),
        stride: usize,
        (pad_h, pad_w): (usize, usize),
        (in_h, in_w): (usize, usize),
    ) -> ConvShape {
        ConvShape {
            cin,
            kh,
            kw,
            stride,
            pad_h,
            pad_w,
            in_h,
            in_w,
            out_h: (in_h + 2 * pad_h - kh) / stride + 1,
            out_w: (in_w + 2 * pad_w - kw) / stride + 1,
        }
    }

    fn filled(n: usize) -> Vec<i16> {
        (0..n).map(|i| (i as i16).wrapping_mul(31).wrapping_add(7)).collect()
    }

    /// Geometry zoo covering stride >1, asymmetric pads, 1-D kernels, and
    /// kernels wider than the input (fully padded rows).
    fn shapes() -> Vec<ConvShape> {
        vec![
            shape(1, (1, 1), 1, (0, 0), (1, 1)),
            shape(2, (3, 3), 1, (1, 1), (5, 7)),
            shape(3, (3, 1), 1, (1, 0), (9, 1)),
            shape(2, (2, 2), 2, (0, 0), (6, 6)),
            shape(1, (3, 3), 2, (1, 1), (7, 5)),
            shape(2, (5, 5), 1, (2, 2), (4, 3)),
            shape(1, (1, 3), 3, (0, 2), (2, 8)),
        ]
    }

    #[test]
    fn runs_body_matches_patch_spec_on_geometry_zoo() {
        for s in shapes() {
            let src = filled(s.in_len());
            let mut a = vec![0i16; s.col_len()];
            let mut b = vec![0i16; s.col_len()];
            im2col_patches_scalar_body(&src, &s, &mut a);
            im2col_patches_runs(&src, &s, &mut b);
            assert_eq!(a, b, "{s:?}");
        }
    }

    #[test]
    fn runs_body_matches_rowmajor_spec_on_geometry_zoo() {
        for s in shapes() {
            let src: Vec<f32> = filled(s.in_len()).iter().map(|&v| v as f32).collect();
            let mut a = vec![0f32; s.col_len()];
            let mut b = vec![0f32; s.col_len()];
            im2col_f32_scalar_body(&src, &s, &mut a);
            im2col_rows_runs(&src, &s, &mut b, |r, d| d.copy_from_slice(r));
            assert_eq!(a, b, "{s:?}");
        }
    }

    #[test]
    fn layouts_are_transposes_of_each_other() {
        let s = shape(2, (3, 3), 1, (1, 1), (5, 5));
        let src: Vec<f32> = (0..s.in_len()).map(|i| i as f32).collect();
        let mut rows = vec![0f32; s.col_len()];
        let mut patches = vec![0f32; s.col_len()];
        im2col_f32_scalar(&src, &s, &mut rows);
        im2col_patches_scalar(&src, &s, &mut patches);
        let (k, n) = (s.k(), s.out_hw());
        for ki in 0..k {
            for j in 0..n {
                assert_eq!(rows[ki * n + j], patches[j * k + ki]);
            }
        }
    }

    #[test]
    fn dispatched_entries_match_spec_at_current_level() {
        let s = shape(2, (3, 3), 1, (1, 1), (6, 6));
        let src = filled(s.in_len());
        let mut spec = vec![0i16; s.col_len()];
        let mut got = vec![0i16; s.col_len()];
        im2col_patches_scalar(&src, &s, &mut spec);
        im2col_patches(&src, &s, &mut got);
        assert_eq!(spec, got);

        let fsrc: Vec<f32> = src.iter().map(|&v| v as f32).collect();
        let mut fspec = vec![0f32; s.col_len()];
        let mut fgot = vec![0f32; s.col_len()];
        im2col_f32_scalar(&fsrc, &s, &mut fspec);
        im2col_f32(&fsrc, &s, &mut fgot);
        assert_eq!(fspec, fgot);
    }

    #[test]
    fn valid_range_brackets_the_in_bounds_positions() {
        for out in 1..6 {
            for stride in 1..4 {
                for koff in 0..5 {
                    for pad in 0..3 {
                        for extent in 1..7 {
                            let (lo, hi) = valid_range(out, stride, koff, pad, extent);
                            for o in 0..out {
                                let ix = (o * stride + koff) as isize - pad as isize;
                                let inside = ix >= 0 && ix < extent as isize;
                                assert_eq!(
                                    inside,
                                    o >= lo && o < hi,
                                    "out={out} stride={stride} koff={koff} pad={pad} \
                                     extent={extent} o={o} -> [{lo},{hi})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
