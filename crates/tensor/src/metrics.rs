//! Classification metrics.

use crate::Tensor;

/// Index of the maximum logit per row of a `[N, classes]` tensor.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    (0..n)
        .map(|s| {
            let row = &logits.data()[s * c..(s + 1) * c];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Fraction of rows whose argmax equals the target label.
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let preds = argmax_rows(logits);
    assert_eq!(preds.len(), targets.len(), "one target per sample");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
    correct as f64 / targets.len() as f64
}

/// Running accuracy accumulator, convenient for batched evaluation.
#[derive(Debug, Default, Clone, Copy)]
pub struct AccuracyMeter {
    correct: usize,
    total: usize,
}

impl AccuracyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a batch of logits and targets.
    pub fn update(&mut self, logits: &Tensor, targets: &[usize]) {
        let preds = argmax_rows(logits);
        self.correct += preds.iter().zip(targets.iter()).filter(|(p, t)| p == t).count();
        self.total += targets.len();
    }

    /// Accuracy so far (0.0 when empty).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Number of accumulated samples.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Folds another meter's counts into this one. Counts are integers, so
    /// merging partial meters gives exactly the same accuracy as one meter
    /// fed every batch — regardless of how the batches were split.
    pub fn merge(&mut self, other: &AccuracyMeter) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// A confusion matrix over `classes` labels.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` labels.
    pub fn new(classes: usize) -> Self {
        Self { classes, counts: vec![0; classes * classes] }
    }

    /// Accumulates predictions against targets.
    ///
    /// # Panics
    ///
    /// Panics if a label is out of range or lengths differ.
    pub fn update(&mut self, logits: &Tensor, targets: &[usize]) {
        let preds = argmax_rows(logits);
        assert_eq!(preds.len(), targets.len(), "one target per sample");
        for (&p, &t) in preds.iter().zip(targets) {
            assert!(p < self.classes && t < self.classes, "label out of range");
            self.counts[t * self.classes + p] += 1;
        }
    }

    /// Count of samples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t * self.classes + p]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Recall of class `c` (0.0 when the class never occurs).
    pub fn recall(&self, c: usize) -> f64 {
        let row: usize = (0..self.classes).map(|p| self.count(c, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / row as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let mut cm = ConfusionMatrix::new(2);
        // two class-0 samples: one right, one wrong; one class-1: right
        let logits = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0]);
        cm.update(&logits, &[0, 0, 1]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        assert!((cm.recall(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let cm = ConfusionMatrix::new(3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(1), 0.0);
    }

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert!((accuracy(&t, &[0, 1]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&t, &[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn meter_accumulates_across_batches() {
        let mut m = AccuracyMeter::new();
        let a = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]);
        let b = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
        m.update(&a, &[0]);
        m.update(&b, &[0]);
        assert_eq!(m.total(), 2);
        assert!((m.value() - 0.5).abs() < 1e-12);
    }
}
