//! Dense matrix-multiply kernels: register-blocked scalar spec plus
//! runtime-dispatched AVX2/FMA bodies, parallel over row blocks of the
//! output.
//!
//! These are the hot loops of both training and sensitivity evaluation. The
//! public entries ([`matmul_acc`], [`matmul_at_b`], [`matmul_a_bt`])
//! dispatch on [`crate::simd::simd_level`]: on AVX2+FMA hosts they run the
//! explicit-SIMD bodies in [`crate::simd`], otherwise (or under
//! `IPRUNE_SIMD=0`) the scalar register-blocked kernels, which stay
//! directly callable as [`matmul_acc_scalar`] / [`matmul_at_b_scalar`] /
//! [`matmul_a_bt_scalar`] — the executable spec.
//!
//! The scalar kernels are blocked the way measurement favors them. The
//! accumulate kernels process output rows in quads: the four left-operand
//! values live in registers, the zero-skip test runs once per value, and
//! the surviving updates are full-width row axpys that auto-vectorize — a
//! square 4×4 tile was measured slower here because the per-tile skip
//! branches cut the vector width to 4. The dot-product kernel uses a 4×4
//! register tile of sixteen accumulators, which breaks the loop-carried
//! dependence of the scalar dot and measures over 2× faster. All kernels
//! fan row blocks out over [`crate::par`] workers when the problem is large
//! enough; edge rows fall back to the scalar reference kernels.
//!
//! Invariants the rest of the workspace relies on:
//!
//! - **Scalar path bit-identical to the scalar reference.** For every
//!   output element the scalar tiled kernels perform the same
//!   floating-point operations in the same order as [`matmul_acc_ref`] /
//!   [`matmul_at_b_ref`] / [`matmul_a_bt_ref`] (ascending `p`, same
//!   zero-skip test), so results match the pre-tiling kernels bit for bit.
//! - **SIMD path ULP-bounded.** The AVX2 bodies fuse multiplies into FMAs
//!   and accumulate dot products in eight lanes; results differ from the
//!   spec only by reassociation/fusion rounding (see [`crate::simd`]).
//! - **Thread-count invariant at either level.** Parallelism splits the
//!   *output rows*; each element is produced by exactly one worker with the
//!   same op order regardless of the split, so any `IPRUNE_THREADS` gives
//!   identical bits.
//!
//! The kernels operate on raw slices rather than [`crate::Tensor`] so that
//! the layer code can multiply scratch buffers (e.g. im2col matrices)
//! without allocating tensor wrappers.

use crate::par;
use crate::simd::{self, SimdLevel};
use iprune_obs::metrics::{self, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Register-blocked rows per quad (and micro-tile edge for `a_bt`).
const MR: usize = 4;
const NR: usize = 4;

/// Counts one kernel call and its multiply-add volume in the host metrics
/// registry. Two relaxed atomic ops per GEMM call — negligible next to the
/// kernel itself.
fn record_gemm(calls: &'static OnceLock<Arc<Counter>>, name: &'static str, macs: usize) {
    static MACS: OnceLock<Arc<Histogram>> = OnceLock::new();
    calls.get_or_init(|| metrics::counter(name)).inc();
    MACS.get_or_init(|| metrics::histogram("gemm.macs")).record(macs as u64);
}

/// Below this many multiply-adds a kernel stays on the calling thread; the
/// scoped spawn overhead dwarfs the work.
const PAR_FLOP_THRESHOLD: usize = 32 * 1024;

/// Picks the per-worker row-block size for an `m`-row output, rounded up to
/// whole micro-tiles, or `m` (no split) for small problems. Shared with the
/// block-sparse kernels in [`crate::sparse`] so both paths split output rows
/// identically.
pub(crate) fn row_block(m: usize, k: usize, n: usize) -> usize {
    if m == 0 {
        return 1;
    }
    if m * k * n < PAR_FLOP_THRESHOLD {
        return m;
    }
    let w = par::workers_for(m.div_ceil(MR));
    if w <= 1 {
        return m;
    }
    (m.div_ceil(w)).div_ceil(MR) * MR
}

/// `c[m][n] += a[m][k] * b[k][n]` over row-major slices, dispatched on the
/// process SIMD level.
///
/// The scalar path skips multiplications where the left operand is exactly
/// zero (the common case for pruned weight matrices and ReLU activations);
/// the AVX2 path is branchless — see [`crate::simd`] for the numerical
/// contract.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.acc_calls", m * k * n);
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return acc_avx2(a, b, c, m, k, n);
    }
    acc_path(a, b, c, m, k, n);
}

/// Scalar register-blocked path of [`matmul_acc`] — the executable spec,
/// bit-identical to [`matmul_acc_ref`] at any thread count regardless of
/// the SIMD dispatch level.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_acc_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.acc_calls", m * k * n);
    acc_path(a, b, c, m, k, n);
}

/// Parallel scalar body shared by [`matmul_acc`] and [`matmul_acc_scalar`].
fn acc_path(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        acc_rows(&a[i0 * k..(i0 + rows) * k], b, c_block, rows, k, n);
    });
}

/// AVX2 body of [`matmul_acc`]: row groups of [`MR`] through the branchless
/// FMA axpy kernel, full reduction range.
#[cfg(target_arch = "x86_64")]
fn acc_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    let segs = [(0usize, k)];
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = 0;
        while i < rows {
            let g = (rows - i).min(MR);
            // SAFETY: avx2+fma hold (dispatch level), indices in bounds by
            // the entry asserts.
            unsafe {
                simd::avx2::axpy_rows(a, (i0 + i) * k, k, 1, g, b, c_block, i, n, &segs);
            }
            i += g;
        }
    });
}

/// Row-quad body of [`matmul_acc`] over a contiguous block of output rows:
/// each streamed `b` row updates four output rows, so `b` is read from
/// cache a quarter as often as in the reference loop, while every update
/// stays a full-width vectorizable axpy with the same per-element op order.
fn acc_rows(a: &[f32], b: &[f32], c: &mut [f32], rows: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + MR <= rows {
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            for ii in 0..MR {
                let av = a[(i + ii) * k + p];
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[(i + ii) * n..(i + ii + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += av * b_v;
                }
            }
        }
        i += MR;
    }
    if i < rows {
        acc_scalar(a, b, c, i, rows, k, n);
    }
}

/// Scalar edge path of [`matmul_acc`]: rows `i0..i1`, full width.
fn acc_scalar(a: &[f32], b: &[f32], c: &mut [f32], i0: usize, i1: usize, k: usize, n: usize) {
    for i in i0..i1 {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += av * b_v;
            }
        }
    }
}

/// `c[m][n] += a[k][m]ᵀ * b[k][n]`: multiplies the transpose of a row-major
/// `a` without materializing it, dispatched on the process SIMD level.
/// Zero entries of `a` are skipped on the scalar path.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.at_b_calls", m * k * n);
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return at_b_avx2(a, b, c, m, k, n);
    }
    at_b_path(a, b, c, m, k, n);
}

/// Scalar register-blocked path of [`matmul_at_b`] — the executable spec,
/// bit-identical to [`matmul_at_b_ref`] at any thread count regardless of
/// the SIMD dispatch level.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_at_b_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.at_b_calls", m * k * n);
    at_b_path(a, b, c, m, k, n);
}

/// Parallel scalar body shared by [`matmul_at_b`] and
/// [`matmul_at_b_scalar`].
fn at_b_path(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        at_b_rows(a, b, c_block, i0, rows, m, k, n);
    });
}

/// AVX2 body of [`matmul_at_b`]: same FMA axpy kernel as [`matmul_acc`],
/// reading `a` transposed (row stride 1, reduction stride `m`).
#[cfg(target_arch = "x86_64")]
fn at_b_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    let segs = [(0usize, k)];
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = 0;
        while i < rows {
            let g = (rows - i).min(MR);
            // SAFETY: avx2+fma hold (dispatch level), indices in bounds by
            // the entry asserts.
            unsafe {
                simd::avx2::axpy_rows(a, i0 + i, 1, m, g, b, c_block, i, n, &segs);
            }
            i += g;
        }
    });
}

/// Row-quad body of [`matmul_at_b`] over output rows `i0..i0 + rows`. `a`
/// is the full `[k][m]` matrix; this block reads its `i0..i0 + rows`
/// columns. The four `a` values per streamed `b` row sit adjacent in
/// memory (one load group), and each surviving update is a full-width
/// vectorizable axpy with the reference per-element op order.
#[allow(clippy::too_many_arguments)]
fn at_b_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    let mut i = 0;
    while i + MR <= rows {
        for p in 0..k {
            let b_row = &b[p * n..(p + 1) * n];
            let ap = &a[p * m + i0 + i..p * m + i0 + i + MR];
            for ii in 0..MR {
                let av = ap[ii];
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[(i + ii) * n..(i + ii + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                    *c_v += av * b_v;
                }
            }
        }
        i += MR;
    }
    if i < rows {
        at_b_scalar(a, b, c, i0 + i, i, rows - i, m, k, n);
    }
}

/// Scalar edge path of [`matmul_at_b`]: `irows` output rows starting at
/// `a` column `ai` / block row `ci`, full width.
#[allow(clippy::too_many_arguments)]
fn at_b_scalar(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ai: usize,
    ci: usize,
    irows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for ii in 0..irows {
        for p in 0..k {
            let av = a[p * m + ai + ii];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[(ci + ii) * n..(ci + ii + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += av * b_v;
            }
        }
    }
}

/// `c[m][n] += a[m][k] * b[n][k]ᵀ`: multiplies by the transpose of a
/// row-major `b` without materializing it, dispatched on the process SIMD
/// level. Each output element is a dot product of two rows, accumulated
/// from zero and added to `c` once.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.a_bt_calls", m * k * n);
    if simd::simd_level() == SimdLevel::Avx2 {
        #[cfg(target_arch = "x86_64")]
        return a_bt_avx2(a, b, c, m, k, n);
    }
    a_bt_path(a, b, c, m, k, n);
}

/// Scalar register-blocked path of [`matmul_a_bt`] — the executable spec,
/// bit-identical to [`matmul_a_bt_ref`] at any thread count regardless of
/// the SIMD dispatch level.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_a_bt_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
    record_gemm(&CALLS, "gemm.a_bt_calls", m * k * n);
    a_bt_path(a, b, c, m, k, n);
}

/// Parallel scalar body shared by [`matmul_a_bt`] and
/// [`matmul_a_bt_scalar`].
fn a_bt_path(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        a_bt_rows(&a[i0 * k..(i0 + rows) * k], b, c_block, rows, k, n);
    });
}

/// AVX2 body of [`matmul_a_bt`]: 4×2 tiles of eight-lane dot accumulators,
/// full reduction range.
#[cfg(target_arch = "x86_64")]
fn a_bt_avx2(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let rows_per = row_block(m, k, n);
    let segs = [(0usize, k)];
    par::par_blocks(c, rows_per * n, |bi, c_block| {
        let i0 = bi * rows_per;
        let rows = c_block.len() / n;
        let mut i = 0;
        while i < rows {
            let g = (rows - i).min(MR);
            let mut j = 0;
            while j < n {
                let cg = (n - j).min(2);
                // SAFETY: avx2+fma hold (dispatch level), indices in bounds
                // by the entry asserts.
                unsafe {
                    simd::avx2::dot_tile(a, i0 + i, g, b, j, cg, k, &segs, c_block, i, j, n);
                }
                j += cg;
            }
            i += g;
        }
    });
}

/// Tiled body of [`matmul_a_bt`] over a contiguous block of output rows.
fn a_bt_rows(a: &[f32], b: &[f32], c: &mut [f32], rows: usize, k: usize, n: usize) {
    let mut i = 0;
    while i + MR <= rows {
        let mut j = 0;
        while j + NR <= n {
            a_bt_tile(a, b, c, i, j, k, n);
            j += NR;
        }
        if j < n {
            a_bt_scalar(a, b, c, i, i + MR, j, n, k, n);
        }
        i += MR;
    }
    if i < rows {
        a_bt_scalar(a, b, c, i, rows, 0, n, k, n);
    }
}

/// One 4×4 register tile of `c += a * bᵀ`: sixteen dot products accumulated
/// from zero, then added to `c` in a single store pass.
#[inline(always)]
fn a_bt_tile(a: &[f32], b: &[f32], c: &mut [f32], i: usize, j: usize, k: usize, n: usize) {
    let mut t = [[0.0f32; NR]; MR];
    for p in 0..k {
        let av = [a[i * k + p], a[(i + 1) * k + p], a[(i + 2) * k + p], a[(i + 3) * k + p]];
        let bv = [b[j * k + p], b[(j + 1) * k + p], b[(j + 2) * k + p], b[(j + 3) * k + p]];
        for (row, &avi) in t.iter_mut().zip(av.iter()) {
            for (tv, &bvj) in row.iter_mut().zip(bv.iter()) {
                *tv += avi * bvj;
            }
        }
    }
    for (ii, row) in t.iter().enumerate() {
        for (jj, &tv) in row.iter().enumerate() {
            c[(i + ii) * n + j + jj] += tv;
        }
    }
}

/// Scalar edge path of [`matmul_a_bt`]: rows `i0..i1`, columns `j0..j1`.
#[allow(clippy::too_many_arguments)]
fn a_bt_scalar(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i1 {
        let a_row = &a[i * k..(i + 1) * k];
        for j in j0..j1 {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the original (pre-tiling) loops, kept
// as the executable specification: the tiled kernels above must match them
// bit for bit, and the perf bench reports tiled speedup against them.
// ---------------------------------------------------------------------------

/// Scalar reference for [`matmul_acc`]; same contract, `i-k-j` loop order.
pub fn matmul_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// Scalar reference for [`matmul_at_b`]; same contract, `k`-outer loop.
pub fn matmul_at_b_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// Scalar reference for [`matmul_a_bt`]; same contract, dot-product loops.
pub fn matmul_a_bt_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(a: &[f32], r: usize, c: usize) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = a[i * c + j];
            }
        }
        t
    }

    fn arb(m: usize, n: usize, seed: f32) -> Vec<f32> {
        (0..m * n).map(|i| ((i as f32 * 0.37 + seed).sin() * 3.0).round() / 4.0).collect()
    }

    #[test]
    fn matmul_acc_matches_naive() {
        let (m, k, n) = (4, 5, 3);
        let a = arb(m, k, 0.1);
        let b = arb(k, n, 0.9);
        let mut c = vec![0.0; m * n];
        matmul_acc(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn matmul_at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        let at = arb(k, m, 0.2); // stored as [k][m]
        let b = arb(k, n, 0.5);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&at, &b, &mut c, m, k, n);
        let a = transpose(&at, k, m);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_a_bt_matches_naive() {
        let (m, k, n) = (2, 7, 5);
        let a = arb(m, k, 0.3);
        let bt = arb(n, k, 0.8); // stored as [n][k]
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &bt, &mut c, m, k, n);
        let b = transpose(&bt, n, k);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    /// The tiled kernels must reproduce the scalar reference kernels bit for
    /// bit across tile-aligned and ragged shapes, with and without zeros,
    /// for every thread count.
    #[test]
    fn tiled_kernels_bitwise_match_reference() {
        let shapes =
            [(1, 1, 1), (4, 4, 4), (8, 16, 12), (5, 7, 9), (13, 3, 17), (16, 32, 16), (33, 19, 29)];
        for &(m, k, n) in &shapes {
            let mut a = arb(m, k, 0.11);
            let b = arb(k, n, 0.77);
            // inject exact zeros to exercise the skip path
            for (i, v) in a.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = 0.0;
                }
            }
            let at = transpose(&a, m, k); // [k][m]
            let bt = transpose(&b, k, n); // [n][k]
            let c0 = arb(m, n, 0.42);

            for threads in [1usize, 2, 4] {
                crate::par::set_threads(threads);

                let mut c_ref = c0.clone();
                matmul_acc_ref(&a, &b, &mut c_ref, m, k, n);
                let mut c_tiled = c0.clone();
                matmul_acc_scalar(&a, &b, &mut c_tiled, m, k, n);
                assert_eq!(bits(&c_ref), bits(&c_tiled), "acc {m}x{k}x{n} t={threads}");

                let mut c_ref = c0.clone();
                matmul_at_b_ref(&at, &b, &mut c_ref, m, k, n);
                let mut c_tiled = c0.clone();
                matmul_at_b_scalar(&at, &b, &mut c_tiled, m, k, n);
                assert_eq!(bits(&c_ref), bits(&c_tiled), "at_b {m}x{k}x{n} t={threads}");

                let mut c_ref = c0.clone();
                matmul_a_bt_ref(&a, &bt, &mut c_ref, m, k, n);
                let mut c_tiled = c0.clone();
                matmul_a_bt_scalar(&a, &bt, &mut c_tiled, m, k, n);
                assert_eq!(bits(&c_ref), bits(&c_tiled), "a_bt {m}x{k}x{n} t={threads}");
            }
            crate::par::set_threads(0);
        }
    }

    /// Above the parallel threshold the row-block split must not change a
    /// single bit.
    #[test]
    fn large_parallel_matmul_is_thread_count_invariant() {
        let (m, k, n) = (61, 33, 47); // > PAR_FLOP_THRESHOLD, ragged
        let a = arb(m, k, 0.21);
        let b = arb(k, n, 0.63);
        crate::par::set_threads(1);
        let mut c1 = vec![0.5f32; m * n];
        matmul_acc_scalar(&a, &b, &mut c1, m, k, n);
        crate::par::set_threads(4);
        let mut c4 = vec![0.5f32; m * n];
        matmul_acc_scalar(&a, &b, &mut c4, m, k, n);
        crate::par::set_threads(0);
        assert_eq!(bits(&c1), bits(&c4));
        let mut c_ref = vec![0.5f32; m * n];
        matmul_acc_ref(&a, &b, &mut c_ref, m, k, n);
        assert_eq!(bits(&c_ref), bits(&c1));
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_acc_bad_dims_panics() {
        let mut c = vec![0.0; 4];
        matmul_acc(&[1.0], &[1.0; 4], &mut c, 2, 2, 2);
    }
}
