//! Small dense matrix-multiply kernels.
//!
//! These are the hot loops of both training and sensitivity evaluation, so
//! they use the cache-friendly `i-k-j` ordering over row-major buffers. They
//! operate on raw slices rather than [`crate::Tensor`] so that the layer code
//! can multiply scratch buffers (e.g. im2col matrices) without allocating
//! tensor wrappers.

/// `c[m][n] += a[m][k] * b[k][n]` over row-major slices.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

/// `c[m][n] += a[k][m]ᵀ * b[k][n]`: multiplies the transpose of a row-major
/// `a` without materializing it.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row.iter()) {
                *c_v += a_pi * b_v;
            }
        }
    }
}

/// `c[m][n] += a[m][k] * b[n][k]ᵀ`: multiplies by the transpose of a
/// row-major `b` without materializing it.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(m, k, n)`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn transpose(a: &[f32], r: usize, c: usize) -> Vec<f32> {
        let mut t = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                t[j * r + i] = a[i * c + j];
            }
        }
        t
    }

    fn arb(m: usize, n: usize, seed: f32) -> Vec<f32> {
        (0..m * n).map(|i| ((i as f32 * 0.37 + seed).sin() * 3.0).round() / 4.0).collect()
    }

    #[test]
    fn matmul_acc_matches_naive() {
        let (m, k, n) = (4, 5, 3);
        let a = arb(m, k, 0.1);
        let b = arb(k, n, 0.9);
        let mut c = vec![0.0; m * n];
        matmul_acc(&a, &b, &mut c, m, k, n);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![1.0; 4];
        matmul_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn matmul_at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        let at = arb(k, m, 0.2); // stored as [k][m]
        let b = arb(k, n, 0.5);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&at, &b, &mut c, m, k, n);
        let a = transpose(&at, k, m);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_a_bt_matches_naive() {
        let (m, k, n) = (2, 7, 5);
        let a = arb(m, k, 0.3);
        let bt = arb(n, k, 0.8); // stored as [n][k]
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &bt, &mut c, m, k, n);
        let b = transpose(&bt, n, k);
        let expect = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_acc_bad_dims_panics() {
        let mut c = vec![0.0; 4];
        matmul_acc(&[1.0], &[1.0; 4], &mut c, 2, 2, 2);
    }
}
